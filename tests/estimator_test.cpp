// The throughput estimator: architecture, parameter budget, preprocessing
// round-trips, and learning on a controlled synthetic task.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/estimator.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace {

using namespace omniboost;
using core::EstimatorConfig;
using core::SampleSet;
using core::ThroughputEstimator;
using tensor::Tensor;

constexpr std::size_t kM = 11;  // dataset models
constexpr std::size_t kL = 37;  // layer capacity

TEST(Estimator, ParameterBudgetPinned) {
  ThroughputEstimator est(kM, kL);
  // The paper quotes 20,044 trainable parameters; this architecture lands at
  // 20,259 (within ~1%). Pinning the exact count guards against accidental
  // bloat.
  EXPECT_EQ(est.num_params(), 20'259u);
  EXPECT_NEAR(static_cast<double>(est.num_params()), 20'044.0,
              20'044.0 * 0.02);
}

TEST(Estimator, ReluVariantSameBudget) {
  EstimatorConfig cfg;
  cfg.use_gelu = false;
  ThroughputEstimator est(kM, kL, cfg);
  EXPECT_EQ(est.num_params(), 20'259u);  // activations carry no parameters
}

TEST(Estimator, PredictShapeAndDeterminism) {
  ThroughputEstimator est(kM, kL);
  Tensor x({3, kM, kL});
  util::Rng rng(3);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng.uniform(0, 1));
  const auto a = est.predict_normalized(x);
  const auto b = est.predict_normalized(x);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(Estimator, RejectsWrongInputShape) {
  ThroughputEstimator est(kM, kL);
  EXPECT_THROW(est.predict(Tensor({3, kM, kL + 1})), std::invalid_argument);
  EXPECT_THROW(est.predict(Tensor({2, kM, kL})), std::invalid_argument);
}

TEST(Estimator, UntrainedFlagAndFitValidation) {
  ThroughputEstimator est(kM, kL);
  EXPECT_FALSE(est.trained());
  SampleSet tiny;
  tiny.inputs.push_back(Tensor({3, kM, kL}));
  tiny.targets.push_back({1.0, 2.0, 3.0});
  nn::L1Loss l1;
  EXPECT_THROW(est.fit(tiny, 1, l1, {}), std::invalid_argument);
}

TEST(Estimator, SeedChangesInitialization) {
  EstimatorConfig a, b;
  a.init_seed = 1;
  b.init_seed = 2;
  ThroughputEstimator ea(kM, kL, a), eb(kM, kL, b);
  Tensor x({3, kM, kL}, 0.5f);
  EXPECT_NE(ea.predict_normalized(x), eb.predict_normalized(x));
}

/// Synthetic task: targets are a fixed linear functional of the input's
/// per-channel mass — learnable by the CNN in a few epochs.
SampleSet make_synthetic(std::size_t n, util::Rng& rng) {
  SampleSet set;
  for (std::size_t s = 0; s < n; ++s) {
    Tensor x({3, kM, kL});
    std::array<double, 3> mass{};
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < kM * kL; ++i) {
        const bool active = rng.chance(0.15);
        const float v = active ? static_cast<float>(rng.uniform(0.1, 1)) : 0.0f;
        x[c * kM * kL + i] = v;
        mass[c] += v;
      }
    }
    set.inputs.push_back(std::move(x));
    // Rates decrease with assigned mass: mimic "loaded component is slower".
    set.targets.push_back({30.0 / (1.0 + mass[0]), 20.0 / (1.0 + mass[1]),
                           8.0 / (1.0 + mass[2])});
  }
  return set;
}

TEST(Estimator, LearnsSyntheticThroughputSurface) {
  util::Rng rng(11);
  const SampleSet data = make_synthetic(160, rng);
  ThroughputEstimator est(kM, kL);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 16;
  tc.lr = 3e-3f;
  const nn::TrainHistory h = est.fit(data, 32, l1, tc);
  EXPECT_TRUE(est.trained());
  ASSERT_EQ(h.train_loss.size(), 30u);
  ASSERT_EQ(h.val_loss.size(), 30u);
  EXPECT_LT(h.train_loss.back(), h.train_loss.front() * 0.7);
  EXPECT_LT(h.val_loss.back(), 0.25);
}

TEST(Estimator, PredictionsLandInTargetRange) {
  util::Rng rng(13);
  const SampleSet data = make_synthetic(120, rng);
  ThroughputEstimator est(kM, kL);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 25;
  est.fit(data, 20, l1, tc);
  // Denormalized predictions should be positive rates of sane magnitude.
  const auto rates = est.predict(data.inputs[0]);
  for (double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 100.0);
  }
  // Reward is the mean flow.
  EXPECT_NEAR(est.predict_reward(data.inputs[0]),
              (rates[0] + rates[1] + rates[2]) / 3.0, 1e-9);
}

TEST(Estimator, GeluOutperformsNothingButRuns) {
  // Smoke check of the ReLU ablation path (paper §IV-B says GELU improved
  // convergence; the ablation bench quantifies it).
  util::Rng rng(17);
  const SampleSet data = make_synthetic(80, rng);
  EstimatorConfig cfg;
  cfg.use_gelu = false;
  ThroughputEstimator est(kM, kL, cfg);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 8;
  const auto h = est.fit(data, 16, l1, tc);
  EXPECT_EQ(h.train_loss.size(), 8u);
  EXPECT_TRUE(std::isfinite(h.train_loss.back()));
}

TEST(Estimator, LogCompressionCanBeDisabled) {
  EstimatorConfig cfg;
  cfg.log_targets = false;
  ThroughputEstimator est(kM, kL, cfg);
  util::Rng rng(19);
  const SampleSet data = make_synthetic(60, rng);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 5;
  EXPECT_NO_THROW(est.fit(data, 10, l1, tc));
}

TEST(Estimator, ConstantTargetsRecoveredAfterDenormalization) {
  // With constant targets the fitted preprocessing degenerates gracefully
  // and predictions denormalize back near the constant.
  util::Rng rng(23);
  SampleSet data;
  for (int i = 0; i < 48; ++i) {
    Tensor x({3, kM, kL});
    for (std::size_t k = 0; k < x.size(); ++k)
      x[k] = rng.chance(0.2) ? static_cast<float>(rng.uniform(0, 1)) : 0.0f;
    data.inputs.push_back(std::move(x));
    data.targets.push_back({5.0, 5.0, 5.0});
  }
  ThroughputEstimator est(kM, kL);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 15;
  est.fit(data, 8, l1, tc);
  const auto rates = est.predict(data.inputs[0]);
  for (double r : rates) EXPECT_NEAR(r, 5.0, 2.5);
}

}  // namespace
