#include "core/serving.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace omniboost::core {

double mapping_churn(const sim::Mapping& previous,
                     const std::vector<std::ptrdiff_t>& carried_from,
                     const sim::Mapping& next, std::size_t* surviving_layers,
                     std::size_t* moved_layers) {
  OB_REQUIRE(carried_from.size() == next.num_dnns(),
             "mapping_churn: carried_from arity mismatch");
  std::size_t surviving = 0, moved = 0;
  for (std::size_t d = 0; d < next.num_dnns(); ++d) {
    const std::ptrdiff_t from = carried_from[d];
    if (from < 0) continue;
    OB_REQUIRE(static_cast<std::size_t>(from) < previous.num_dnns(),
               "mapping_churn: carried_from out of range");
    const sim::Assignment& was =
        previous.assignment(static_cast<std::size_t>(from));
    const sim::Assignment& now = next.assignment(d);
    OB_REQUIRE(was.size() == now.size(),
               "mapping_churn: surviving stream layer-count mismatch");
    surviving += was.size();
    for (std::size_t l = 0; l < was.size(); ++l)
      if (was[l] != now[l]) ++moved;
  }
  if (surviving_layers != nullptr) *surviving_layers = surviving;
  if (moved_layers != nullptr) *moved_layers = moved;
  return surviving > 0 ? static_cast<double>(moved) /
                             static_cast<double>(surviving)
                       : 0.0;
}

ServingSession::ServingSession(const models::ModelZoo& zoo,
                               const sim::DesSimulator& board,
                               ServingConfig config)
    : zoo_(&zoo),
      board_(&board),
      config_(config),
      migration_(board.device(), config.migration) {}

const EpochReport& ServingSession::apply(IScheduler& scheduler,
                                         const workload::ScenarioEvent& e,
                                         double arrival_stall_s) {
  OB_REQUIRE(!workload::is_fault_event(e.kind),
             "ServingSession::apply: fault events are fleet-level — "
             "core::Cluster translates them into evict_all()/refresh()");
  OB_REQUIRE(arrival_stall_s >= 0.0,
             "ServingSession::apply: negative arrival stall");
  OB_REQUIRE(
      arrival_stall_s == 0.0 ||
          e.kind == workload::ScenarioEventKind::kArrive,
      "ServingSession::apply: arrival stall on a non-arrive event");

  EpochReport ep;
  ep.time_s = e.time_s;
  ep.event =
      std::string(e.kind == workload::ScenarioEventKind::kArrive ? "arrive "
                                                                 : "depart ") +
      std::string(models::model_name(e.model));

  // Apply the event. A Scenario's own validation already guarantees
  // legality for the batch path; a stepwise driver must uphold the same
  // contract, so depart-of-absent is re-checked here. The SLO arrives with
  // the stream and leaves with it — a later re-arrival without an `slo`
  // clause serves unconstrained.
  if (e.kind == workload::ScenarioEventKind::kArrive) {
    OB_REQUIRE(std::find(present_.begin(), present_.end(), e.model) ==
                   present_.end(),
               "ServingSession::apply: arrival of a stream already present");
    present_.push_back(e.model);
    present_slo_s_.push_back(e.slo_ms / 1e3);
  } else {
    const auto it = std::find(present_.begin(), present_.end(), e.model);
    OB_REQUIRE(it != present_.end(),
               "ServingSession::apply: departure of a stream not present");
    present_slo_s_.erase(present_slo_s_.begin() + (it - present_.begin()));
    present_.erase(it);
  }

  if (present_.empty()) {
    // Idle epoch: nothing to schedule; the next decision starts cold.
    ep.mix = "(idle)";
    have_prev_ = false;
    last_throughput_ = 0.0;
    report_.epochs.push_back(std::move(ep));
    return report_.epochs.back();
  }

  return serve_epoch(scheduler, std::move(ep), arrival_stall_s);
}

const EpochReport& ServingSession::refresh(IScheduler& scheduler,
                                           double time_s,
                                           const std::string& label) {
  OB_REQUIRE(!present_.empty(),
             "ServingSession::refresh: nothing resident to refresh");
  EpochReport ep;
  ep.time_s = time_s;
  ep.event = label;
  return serve_epoch(scheduler, std::move(ep), 0.0);
}

void ServingSession::evict_all() {
  present_.clear();
  present_slo_s_.clear();
  have_prev_ = false;
  last_throughput_ = 0.0;
}

const EpochReport& ServingSession::serve_epoch(IScheduler& scheduler,
                                               EpochReport ep,
                                               double arrival_stall_s) {
  const workload::Workload w{present_};
  ep.mix = w.describe();
  ep.mix_size = w.size();

  std::vector<std::ptrdiff_t> carried_from;
  if (!have_prev_) {
    ep.decision = scheduler.schedule(w);
  } else {
    ScheduleContext ctx;
    ctx.previous_workload = prev_w_;
    ctx.warm_start = config_.warm_start;
    ctx.slo_s = present_slo_s_;
    ctx.board = board_;
    ctx.migration = &migration_;
    ctx.carried_from.reserve(w.size());
    for (const models::ModelId id : w.mix) {
      const auto it = std::find(prev_w_.mix.begin(), prev_w_.mix.end(), id);
      ctx.carried_from.push_back(it == prev_w_.mix.end()
                                     ? std::ptrdiff_t{-1}
                                     : it - prev_w_.mix.begin());
    }
    ep.decision = scheduler.reschedule(w, prev_mapping_, ctx);
    ep.churn = mapping_churn(prev_mapping_, ctx.carried_from,
                             ep.decision.mapping, &ep.surviving_layers,
                             &ep.moved_layers);
    carried_from = std::move(ctx.carried_from);
    ++incremental_;
    incremental_seconds_ += ep.decision.decision_seconds;
    if (ep.surviving_layers > 0) {
      ++churn_epochs_;
      churn_sum_ += ep.churn;
    }
  }

  // "Execute" the decision: steady-state measurement on the board. With
  // the churn-cost model enabled, incremental epochs charge each surviving
  // stream its one-off migration stall (delayed DES start); first and
  // post-idle decisions load weights from scratch no matter who decided,
  // so they are never charged.
  const sim::NetworkList nets = w.resolve(*zoo_);
  std::vector<double> start_delay_s;
  if (have_prev_ && migration_.enabled()) {
    const sim::MigrationStats mig = migration_.assess(
        nets, prev_mapping_, carried_from, ep.decision.mapping);
    ep.migrated_segments = mig.migrated_segments;
    ep.migration_weight_bytes = mig.moved_weight_bytes;
    ep.migration_stall_s = mig.total_delay_s;
    start_delay_s = mig.stream_delay_s;
    report_.total_migrated_segments += mig.migrated_segments;
    report_.total_migration_stall_s += mig.total_delay_s;
  }
  if (arrival_stall_s > 0.0) {
    // Cross-board migrate-in (Cluster): the arriving stream — always the
    // last mix slot, present_ is arrival-ordered — waits out its weight
    // transfer before its first frame. Fleet-level accounting only; the
    // epoch's intra-board migration_* fields are untouched.
    start_delay_s.resize(w.size(), 0.0);
    start_delay_s.back() += arrival_stall_s;
  }

  ep.slo_streams = static_cast<std::size_t>(
      std::count_if(present_slo_s_.begin(), present_slo_s_.end(),
                    [](double s) { return s > 0.0; }));
  if (ep.slo_streams > 0) {
    // SLO epochs measure through the traced simulator (identical
    // throughput accounting; adds per-stream latency distributions).
    const sim::DesSimulator::TracedResult traced =
        board_->simulate_traced(nets, ep.decision.mapping, start_delay_s);
    ep.feasible = traced.report.feasible;
    ep.measured_throughput = traced.report.avg_throughput;
    ep.slo_s = present_slo_s_;
    ep.latency_p99_s.reserve(w.size());
    for (const sim::LatencyStats& ls : traced.trace.per_dnn_latency)
      ep.latency_p99_s.push_back(ls.p99);
    // sim::breaks_slo is the shared rule (starvation counts; see its
    // header comment) — the SLO-aware search uses the identical one.
    for (std::size_t d = 0; d < w.size(); ++d) {
      if (sim::breaks_slo(traced.report, traced.trace, d, present_slo_s_[d]))
        ++ep.slo_violations;
    }
    report_.total_slo_streams += ep.slo_streams;
    report_.total_slo_violations += ep.slo_violations;
  } else {
    const sim::ThroughputReport measured =
        board_->simulate(nets, ep.decision.mapping, start_delay_s);
    ep.feasible = measured.feasible;
    ep.measured_throughput = measured.avg_throughput;
  }

  ++report_.decisions;
  report_.total_decision_seconds += ep.decision.decision_seconds;
  report_.total_evaluations += ep.decision.evaluations;
  report_.total_cache_hits += ep.decision.cache_hits;
  report_.total_des_replays += ep.decision.des_replays;
  report_.total_replay_hits += ep.decision.replay_hits;
  throughput_sum_ += ep.measured_throughput;
  last_throughput_ = ep.measured_throughput;

  prev_w_ = w;
  prev_mapping_ = ep.decision.mapping;
  have_prev_ = true;
  report_.epochs.push_back(std::move(ep));
  return report_.epochs.back();
}

ServingReport ServingSession::finish() const {
  ServingReport report = report_;
  if (report.decisions > 0)
    report.mean_throughput =
        throughput_sum_ / static_cast<double>(report.decisions);
  if (incremental_ > 0)
    report.mean_incremental_decision_seconds =
        incremental_seconds_ / static_cast<double>(incremental_);
  if (churn_epochs_ > 0)
    report.mean_churn = churn_sum_ / static_cast<double>(churn_epochs_);
  return report;
}

ServingRuntime::ServingRuntime(const models::ModelZoo& zoo,
                               const sim::DesSimulator& board,
                               ServingConfig config)
    : zoo_(&zoo),
      board_(&board),
      config_(config),
      migration_(board.device(), config.migration) {}

ServingReport ServingRuntime::run(IScheduler& scheduler,
                                  const workload::Scenario& scenario) const {
  OB_REQUIRE(!scenario.empty(), "ServingRuntime::run: empty scenario");

  ServingSession session(*zoo_, *board_, config_);
  for (const workload::ScenarioEvent& e : scenario.events())
    session.apply(scheduler, e);
  return session.finish();
}

}  // namespace omniboost::core
