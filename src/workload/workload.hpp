#pragma once
/// \file workload.hpp
/// A multi-DNN workload: the set of concurrently-executing models the
/// scheduler must place (the paper's "mixes" of 1-5 DNNs).

#include <string>
#include <vector>

#include "models/zoo.hpp"
#include "sim/segments.hpp"

namespace omniboost::workload {

/// An ordered mix of dataset models executing concurrently.
struct Workload {
  std::vector<models::ModelId> mix;

  std::size_t size() const { return mix.size(); }

  /// Network descriptions, borrowed from the zoo.
  sim::NetworkList resolve(const models::ModelZoo& zoo) const;

  /// Layer counts per DNN (for Mapping construction).
  std::vector<std::size_t> layer_counts(const models::ModelZoo& zoo) const;

  /// Human-readable mix description, e.g. "VGG-19+AlexNet+MobileNet".
  std::string describe() const;
};

}  // namespace omniboost::workload
