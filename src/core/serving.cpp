#include "core/serving.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace omniboost::core {

double mapping_churn(const sim::Mapping& previous,
                     const std::vector<std::ptrdiff_t>& carried_from,
                     const sim::Mapping& next, std::size_t* surviving_layers,
                     std::size_t* moved_layers) {
  OB_REQUIRE(carried_from.size() == next.num_dnns(),
             "mapping_churn: carried_from arity mismatch");
  std::size_t surviving = 0, moved = 0;
  for (std::size_t d = 0; d < next.num_dnns(); ++d) {
    const std::ptrdiff_t from = carried_from[d];
    if (from < 0) continue;
    OB_REQUIRE(static_cast<std::size_t>(from) < previous.num_dnns(),
               "mapping_churn: carried_from out of range");
    const sim::Assignment& was =
        previous.assignment(static_cast<std::size_t>(from));
    const sim::Assignment& now = next.assignment(d);
    OB_REQUIRE(was.size() == now.size(),
               "mapping_churn: surviving stream layer-count mismatch");
    surviving += was.size();
    for (std::size_t l = 0; l < was.size(); ++l)
      if (was[l] != now[l]) ++moved;
  }
  if (surviving_layers != nullptr) *surviving_layers = surviving;
  if (moved_layers != nullptr) *moved_layers = moved;
  return surviving > 0 ? static_cast<double>(moved) /
                             static_cast<double>(surviving)
                       : 0.0;
}

ServingRuntime::ServingRuntime(const models::ModelZoo& zoo,
                               const sim::DesSimulator& board,
                               ServingConfig config)
    : zoo_(&zoo),
      board_(&board),
      config_(config),
      migration_(board.device(), config.migration) {}

ServingReport ServingRuntime::run(IScheduler& scheduler,
                                  const workload::Scenario& scenario) const {
  OB_REQUIRE(!scenario.empty(), "ServingRuntime::run: empty scenario");

  ServingReport report;
  report.epochs.reserve(scenario.size());

  // Serving state: the mix currently on the board (with each stream's SLO,
  // index-aligned) and its mapping.
  std::vector<models::ModelId> present;
  std::vector<double> present_slo_s;
  workload::Workload prev_w;
  sim::Mapping prev_mapping;
  bool have_prev = false;

  std::size_t incremental = 0;
  double incremental_seconds = 0.0;
  double throughput_sum = 0.0;
  std::size_t churn_epochs = 0;
  double churn_sum = 0.0;

  for (const workload::ScenarioEvent& e : scenario.events()) {
    EpochReport ep;
    ep.time_s = e.time_s;
    ep.event =
        std::string(e.kind == workload::ScenarioEventKind::kArrive ? "arrive "
                                                                   : "depart ") +
        std::string(models::model_name(e.model));

    // Apply the event (Scenario construction already validated legality).
    // The SLO arrives with the stream and leaves with it — a later
    // re-arrival without an `slo` clause serves unconstrained.
    if (e.kind == workload::ScenarioEventKind::kArrive) {
      present.push_back(e.model);
      present_slo_s.push_back(e.slo_ms / 1e3);
    } else {
      const auto it = std::find(present.begin(), present.end(), e.model);
      present_slo_s.erase(present_slo_s.begin() + (it - present.begin()));
      present.erase(it);
    }

    if (present.empty()) {
      // Idle epoch: nothing to schedule; the next decision starts cold.
      ep.mix = "(idle)";
      have_prev = false;
      report.epochs.push_back(std::move(ep));
      continue;
    }

    const workload::Workload w{present};
    ep.mix = w.describe();
    ep.mix_size = w.size();

    std::vector<std::ptrdiff_t> carried_from;
    if (!have_prev) {
      ep.decision = scheduler.schedule(w);
    } else {
      ScheduleContext ctx;
      ctx.previous_workload = prev_w;
      ctx.warm_start = config_.warm_start;
      ctx.slo_s = present_slo_s;
      ctx.board = board_;
      ctx.migration = &migration_;
      ctx.carried_from.reserve(w.size());
      for (const models::ModelId id : w.mix) {
        const auto it =
            std::find(prev_w.mix.begin(), prev_w.mix.end(), id);
        ctx.carried_from.push_back(
            it == prev_w.mix.end() ? std::ptrdiff_t{-1}
                                   : it - prev_w.mix.begin());
      }
      ep.decision = scheduler.reschedule(w, prev_mapping, ctx);
      ep.churn = mapping_churn(prev_mapping, ctx.carried_from,
                               ep.decision.mapping, &ep.surviving_layers,
                               &ep.moved_layers);
      carried_from = std::move(ctx.carried_from);
      ++incremental;
      incremental_seconds += ep.decision.decision_seconds;
      if (ep.surviving_layers > 0) {
        ++churn_epochs;
        churn_sum += ep.churn;
      }
    }

    // "Execute" the decision: steady-state measurement on the board. With
    // the churn-cost model enabled, incremental epochs charge each surviving
    // stream its one-off migration stall (delayed DES start); first and
    // post-idle decisions load weights from scratch no matter who decided,
    // so they are never charged.
    const sim::NetworkList nets = w.resolve(*zoo_);
    std::vector<double> start_delay_s;
    if (have_prev && migration_.enabled()) {
      const sim::MigrationStats mig = migration_.assess(
          nets, prev_mapping, carried_from, ep.decision.mapping);
      ep.migrated_segments = mig.migrated_segments;
      ep.migration_weight_bytes = mig.moved_weight_bytes;
      ep.migration_stall_s = mig.total_delay_s;
      start_delay_s = mig.stream_delay_s;
      report.total_migrated_segments += mig.migrated_segments;
      report.total_migration_stall_s += mig.total_delay_s;
    }

    ep.slo_streams = static_cast<std::size_t>(
        std::count_if(present_slo_s.begin(), present_slo_s.end(),
                      [](double s) { return s > 0.0; }));
    if (ep.slo_streams > 0) {
      // SLO epochs measure through the traced simulator (identical
      // throughput accounting; adds per-stream latency distributions).
      const sim::DesSimulator::TracedResult traced =
          board_->simulate_traced(nets, ep.decision.mapping, start_delay_s);
      ep.feasible = traced.report.feasible;
      ep.measured_throughput = traced.report.avg_throughput;
      ep.slo_s = present_slo_s;
      ep.latency_p99_s.reserve(w.size());
      for (const sim::LatencyStats& ls : traced.trace.per_dnn_latency)
        ep.latency_p99_s.push_back(ls.p99);
      // sim::breaks_slo is the shared rule (starvation counts; see its
      // header comment) — the SLO-aware search uses the identical one.
      for (std::size_t d = 0; d < w.size(); ++d) {
        if (sim::breaks_slo(traced.report, traced.trace, d,
                            present_slo_s[d]))
          ++ep.slo_violations;
      }
      report.total_slo_streams += ep.slo_streams;
      report.total_slo_violations += ep.slo_violations;
    } else {
      const sim::ThroughputReport measured =
          board_->simulate(nets, ep.decision.mapping, start_delay_s);
      ep.feasible = measured.feasible;
      ep.measured_throughput = measured.avg_throughput;
    }

    ++report.decisions;
    report.total_decision_seconds += ep.decision.decision_seconds;
    report.total_evaluations += ep.decision.evaluations;
    report.total_cache_hits += ep.decision.cache_hits;
    throughput_sum += ep.measured_throughput;

    prev_w = w;
    prev_mapping = ep.decision.mapping;
    have_prev = true;
    report.epochs.push_back(std::move(ep));
  }

  if (report.decisions > 0)
    report.mean_throughput =
        throughput_sum / static_cast<double>(report.decisions);
  if (incremental > 0)
    report.mean_incremental_decision_seconds =
        incremental_seconds / static_cast<double>(incremental);
  if (churn_epochs > 0)
    report.mean_churn = churn_sum / static_cast<double>(churn_epochs);
  return report;
}

}  // namespace omniboost::core
