// Cross-module property sweeps: invariants that must hold for *any* seed,
// any workload, any mapping — the contracts the schedulers, simulators and
// embedding machinery rely on when composed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/embedding.hpp"
#include "device/cost_model.hpp"
#include "models/zoo.hpp"
#include "sim/analytic.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using sim::ComponentId;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

const device::DeviceSpec& hikey() {
  static const device::DeviceSpec d = device::make_hikey970();
  return d;
}

const device::CostModel& cost() {
  static const device::CostModel c(hikey());
  return c;
}

const sim::DesSimulator& board() {
  static const sim::DesSimulator s(hikey());
  return s;
}

const sim::AnalyticModel& analytic() {
  static const sim::AnalyticModel m(hikey());
  return m;
}

const core::EmbeddingTensor& embedding() {
  static const core::EmbeddingTensor e(zoo(), cost());
  return e;
}

/// Seed-parameterized sweep fixture.
class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 7, 42, 1234, 99991));

// --- Mapping / segment invariants -------------------------------------------

TEST_P(SeededProperty, RandomMappingsAreAlwaysValid) {
  for (int i = 0; i < 20; ++i) {
    const std::size_t n = 1 + rng_.below(5);
    const Workload w = workload::random_mix(rng_, n);
    const sim::Mapping m = workload::random_mapping(rng_, zoo(), w, 3);

    ASSERT_EQ(m.num_dnns(), n);
    const auto counts = w.layer_counts(zoo());
    for (std::size_t d = 0; d < n; ++d) {
      ASSERT_EQ(m.assignment(d).size(), counts[d]);
      ASSERT_LE(m.stages(d), 3u);
    }
    ASSERT_TRUE(m.within_stage_limit(3));
  }
}

TEST_P(SeededProperty, SegmentsPartitionTheLayerRange) {
  for (int i = 0; i < 30; ++i) {
    const std::size_t layers = 1 + rng_.below(40);
    const sim::Assignment a = workload::random_assignment(rng_, layers, 3);
    const auto segs = sim::extract_segments(a);

    // Segments tile [0, layers) without gaps or overlaps...
    ASSERT_FALSE(segs.empty());
    ASSERT_EQ(segs.front().first, 0u);
    ASSERT_EQ(segs.back().last, layers - 1);
    for (std::size_t s = 1; s < segs.size(); ++s) {
      ASSERT_EQ(segs[s].first, segs[s - 1].last + 1);
      // ...and adjacent segments run on different components (else they
      // would be one segment).
      ASSERT_NE(segs[s].comp, segs[s - 1].comp);
    }
    ASSERT_EQ(segs.size(), sim::num_stages(a));
  }
}

TEST_P(SeededProperty, RandomMixesDrawDistinctModels) {
  for (int i = 0; i < 20; ++i) {
    const std::size_t n = 1 + rng_.below(5);
    const Workload w = workload::random_mix(rng_, n);
    std::set<ModelId> unique(w.mix.begin(), w.mix.end());
    ASSERT_EQ(unique.size(), w.size());
  }
}

// --- Cost-model invariants ----------------------------------------------------

TEST(CostModelProperty, LayerTimeIsPositiveEverywhere) {
  for (const auto& net : zoo().networks()) {
    for (const auto& layer : net.layers) {
      for (const ComponentId c : device::kAllComponents) {
        ASSERT_GT(cost().layer_time(layer, c), 0.0)
            << net.name << "/" << layer.name << " on "
            << device::component_name(c);
      }
    }
  }
}

TEST(CostModelProperty, SegmentTimeIsAdditive) {
  const auto& net = zoo().network(ModelId::kVgg16);
  for (const ComponentId c : device::kAllComponents) {
    const double whole = cost().segment_time(net, 0, net.num_layers() - 1, c);
    double by_layer = 0.0;
    for (std::size_t l = 0; l < net.num_layers(); ++l)
      by_layer += cost().layer_time(net.layers[l], c);
    ASSERT_NEAR(whole, by_layer, 1e-12 * std::max(1.0, whole));
  }
}

TEST(CostModelProperty, LittleCpuNeverBeatsBigCpu) {
  // Same micro-architecture family, lower clock and narrower units: the
  // LITTLE cluster must be slower than the big cluster on every layer.
  for (const auto& net : zoo().networks()) {
    for (const auto& layer : net.layers) {
      ASSERT_GE(cost().layer_time(layer, ComponentId::kLittleCpu),
                cost().layer_time(layer, ComponentId::kBigCpu))
          << net.name << "/" << layer.name;
    }
  }
}

TEST(CostModelProperty, TransferCostsAreSymmetricAndZeroOnSelf) {
  for (const ComponentId a : device::kAllComponents) {
    for (const ComponentId b : device::kAllComponents) {
      const double t_ab = cost().transfer_time(1e6, a, b);
      if (a == b) {
        ASSERT_EQ(t_ab, 0.0);
      } else {
        ASSERT_GT(t_ab, 0.0);
        ASSERT_DOUBLE_EQ(t_ab, cost().transfer_time(1e6, b, a));
      }
    }
  }
}

TEST(CostModelProperty, TransferTimeMonotoneInBytes) {
  double prev = 0.0;
  for (const double bytes : {1e3, 1e5, 1e7, 1e9}) {
    const double t = cost().transfer_time(bytes, ComponentId::kGpu,
                                          ComponentId::kBigCpu);
    ASSERT_GT(t, prev);
    prev = t;
  }
}

// --- Simulator cross-validation ------------------------------------------------

TEST_P(SeededProperty, DesAndAnalyticAgreeOnFeasibility) {
  for (int i = 0; i < 8; ++i) {
    const Workload w = workload::random_mix(rng_, 1 + rng_.below(5));
    const sim::Mapping m = workload::random_mapping(rng_, zoo(), w, 3);
    const auto nets = w.resolve(zoo());
    ASSERT_EQ(board().simulate(nets, m).feasible,
              analytic().evaluate(nets, m).feasible)
        << w.describe();
  }
}

TEST_P(SeededProperty, DesRatesAreFiniteAndNonNegative) {
  for (int i = 0; i < 8; ++i) {
    const Workload w = workload::random_mix(rng_, 1 + rng_.below(4));
    const sim::Mapping m = workload::random_mapping(rng_, zoo(), w, 3);
    const auto r = board().simulate(w.resolve(zoo()), m);
    for (const double rate : r.per_dnn_rate) {
      ASSERT_TRUE(std::isfinite(rate));
      ASSERT_GE(rate, 0.0);
    }
    ASSERT_LE(r.avg_throughput,
              *std::max_element(r.per_dnn_rate.begin(), r.per_dnn_rate.end()) +
                  1e-12);
    ASSERT_GE(r.dram_scale, 0.0);
    ASSERT_LE(r.dram_scale, 1.0);
  }
}

TEST(SimulatorAgreement, RankCorrelationAcrossRandomMappings) {
  // The analytic model is only useful as a fast oracle if it *ranks*
  // mappings like the DES does. Spearman over 40 random mappings of a fixed
  // 3-mix must be strongly positive.
  util::Rng rng(2024);
  const Workload w{{ModelId::kVgg16, ModelId::kAlexNet, ModelId::kMobileNet}};
  const auto nets = w.resolve(zoo());

  std::vector<double> des_t, ana_t;
  for (int i = 0; i < 40; ++i) {
    const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
    des_t.push_back(board().simulate(nets, m).avg_throughput);
    ana_t.push_back(analytic().evaluate(nets, m).avg_throughput);
  }
  const auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
      r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(des_t), rb = ranks(ana_t);
  const double mean = (static_cast<double>(ra.size()) - 1.0) / 2.0;
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    num += (ra[i] - mean) * (rb[i] - mean);
    da += (ra[i] - mean) * (ra[i] - mean);
    db += (rb[i] - mean) * (rb[i] - mean);
  }
  const double spearman = num / std::sqrt(da * db);
  EXPECT_GT(spearman, 0.7) << "analytic model ranks unlike the DES";
}

// --- Embedding / mask invariants ----------------------------------------------

TEST_P(SeededProperty, MaskedInputIsSubsetOfEmbedding) {
  const auto& u = embedding().tensor();
  for (int i = 0; i < 10; ++i) {
    const Workload w = workload::random_mix(rng_, 1 + rng_.below(5));
    const sim::Mapping m = workload::random_mapping(rng_, zoo(), w, 3);
    const tensor::Tensor masked = embedding().masked_input(w, m);

    ASSERT_EQ(masked.shape(), u.shape());
    for (std::size_t k = 0; k < masked.size(); ++k) {
      // Every masked cell is either zero or exactly the embedding value.
      ASSERT_TRUE(masked[k] == 0.0f || masked[k] == u[k]) << "cell " << k;
    }
  }
}

TEST_P(SeededProperty, MaskSlicesAreDisjointAcrossComponents) {
  // A layer runs on exactly one component, so for any (model, layer) cell at
  // most one of the three component slices may be non-zero.
  const std::size_t md = embedding().models_dim();
  const std::size_t ld = embedding().layers_dim();
  for (int i = 0; i < 5; ++i) {
    const Workload w = workload::random_mix(rng_, 1 + rng_.below(5));
    const sim::Mapping m = workload::random_mapping(rng_, zoo(), w, 3);
    const tensor::Tensor masked = embedding().masked_input(w, m);
    for (std::size_t cell = 0; cell < md * ld; ++cell) {
      int active = 0;
      for (std::size_t c = 0; c < 3; ++c)
        if (masked[c * md * ld + cell] != 0.0f) ++active;
      ASSERT_LE(active, 1) << "cell " << cell;
    }
  }
}

TEST_P(SeededProperty, FullWorkloadMaskCoversEveryProfiledLayer) {
  // Cells of scheduled models: the union over components must reproduce the
  // embedding exactly wherever the embedding is non-zero.
  const std::size_t md = embedding().models_dim();
  const std::size_t ld = embedding().layers_dim();
  const auto& u = embedding().tensor();

  const Workload w = workload::random_mix(rng_, 3);
  const sim::Mapping m = workload::random_mapping(rng_, zoo(), w, 3);
  const tensor::Tensor masked = embedding().masked_input(w, m);

  for (const ModelId id : w.mix) {
    const std::size_t col = models::model_index(id);
    const std::size_t layers = zoo().network(id).num_layers();
    for (std::size_t l = 0; l < layers; ++l) {
      float union_val = 0.0f;
      float embed_max = 0.0f;
      for (std::size_t c = 0; c < 3; ++c) {
        union_val = std::max(union_val, masked[c * md * ld + col * ld + l]);
        embed_max = std::max(embed_max, u[c * md * ld + col * ld + l]);
      }
      ASSERT_GT(embed_max, 0.0f) << "unprofiled layer?";
      ASSERT_GT(union_val, 0.0f)
          << "scheduled layer " << l << " of " << models::model_name(id)
          << " missing from the mask";
    }
  }
}

// --- Degenerate / failure-injection cases --------------------------------------

TEST(DegenerateCases, SingleLayerAssignments) {
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const sim::Assignment a = workload::random_assignment(rng, 1, 3);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(sim::num_stages(a), 1u);
  }
}

TEST(DegenerateCases, StageLimitOneProducesSingleComponent) {
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const sim::Assignment a = workload::random_assignment(rng, 25, 1);
    ASSERT_EQ(sim::num_stages(a), 1u);
  }
}

TEST(DegenerateCases, EmptyWorkloadRejectedEverywhere) {
  const sim::NetworkList none;
  EXPECT_THROW(board().simulate(none, sim::Mapping()), std::invalid_argument);
  EXPECT_THROW(analytic().evaluate(none, sim::Mapping()),
               std::invalid_argument);
}

TEST(DegenerateCases, MismatchedMappingRejected) {
  const Workload w{{ModelId::kAlexNet, ModelId::kVgg19}};
  const auto nets = w.resolve(zoo());
  // Mapping arity != workload arity.
  const sim::Mapping one = sim::Mapping::all_on(
      {zoo().network(ModelId::kAlexNet).num_layers()}, ComponentId::kGpu);
  EXPECT_THROW(board().simulate(nets, one), std::invalid_argument);
  // Assignment length != network layer count.
  const sim::Mapping wrong_len =
      sim::Mapping::all_on({3, 4}, ComponentId::kGpu);
  EXPECT_THROW(board().simulate(nets, wrong_len), std::invalid_argument);
}

TEST(DegenerateCases, ZeroThroughputWorkloadsStayConsistent) {
  // Infeasible (over-memory) workloads must report zeroed, consistent data
  // through both simulators and never NaN.
  const Workload w{{ModelId::kVgg19, ModelId::kVgg16, ModelId::kVgg13,
                    ModelId::kResNet101, ModelId::kInceptionV4,
                    ModelId::kResNet50}};
  const auto nets = w.resolve(zoo());
  const sim::Mapping m =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const sim::ThroughputReport from_des = board().simulate(nets, m);
  const sim::ThroughputReport from_analytic = analytic().evaluate(nets, m);
  for (const sim::ThroughputReport* report : {&from_des, &from_analytic}) {
    ASSERT_FALSE(report->feasible);
    ASSERT_EQ(report->avg_throughput, 0.0);
    for (const double r : report->per_dnn_rate) ASSERT_EQ(r, 0.0);
  }
}

}  // namespace
