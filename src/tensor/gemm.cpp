#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/require.hpp"

namespace omniboost::tensor {

namespace {

// Cache-blocking parameters. The packed A block (kMC x kKC floats) and one
// B panel (kKC x kNR) sit comfortably in L1/L2 on any contemporary core;
// the micro-tile accumulates a kMR x kNR register block so each packed
// element is loaded once per tile instead of once per multiply-add.
constexpr std::size_t kMC = 64;   // rows of op(A) per block
constexpr std::size_t kKC = 128;  // shared dimension per block
constexpr std::size_t kNC = 256;  // cols of op(B) per block
// Micro-tile: 4x8 keeps the accumulator block at 8 SSE registers (the
// portable baseline this library is compiled for — no -march flags, so the
// bit-frozen reference numerics cannot pick up FMA contraction), leaving
// room for the B row and the A broadcast without spilling.
constexpr std::size_t kMR = 4;    // micro-tile rows
constexpr std::size_t kNR = 8;    // micro-tile cols

/// Element (r, c) of op(X) where the stored matrix has row stride ld.
inline float op_at(const float* x, std::size_t ld, bool trans, std::size_t r,
                   std::size_t c) {
  return trans ? x[c * ld + r] : x[r * ld + c];
}

/// Packs op(A)[i0:i0+mc, k0:k0+kc] into kMR-row panels: panel p holds rows
/// [p*kMR, p*kMR+kMR), laid out k-major (buf[k*kMR + i]) so the micro-kernel
/// streams it contiguously. Rows past mc are zero-padded — zeros fall out of
/// the multiply, keeping the kernel branch-free.
void pack_a(const float* a, std::size_t lda, bool trans, std::size_t i0,
            std::size_t k0, std::size_t mc, std::size_t kc, float* buf) {
  for (std::size_t p = 0; p < mc; p += kMR) {
    const std::size_t rows = std::min(kMR, mc - p);
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t i = 0; i < kMR; ++i) {
        *buf++ = i < rows ? op_at(a, lda, trans, i0 + p + i, k0 + k) : 0.0f;
      }
    }
  }
}

/// Packs op(B)[k0:k0+kc, j0:j0+nc] into kNR-column panels (buf[k*kNR + j]),
/// zero-padding columns past nc.
void pack_b(const float* b, std::size_t ldb, bool trans, std::size_t k0,
            std::size_t j0, std::size_t kc, std::size_t nc, float* buf) {
  for (std::size_t p = 0; p < nc; p += kNR) {
    const std::size_t cols = std::min(kNR, nc - p);
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t j = 0; j < kNR; ++j) {
        *buf++ = j < cols ? op_at(b, ldb, trans, k0 + k, j0 + p + j) : 0.0f;
      }
    }
  }
}

/// kMR x kNR register tile: acc = sum_k apanel[k]*bpanel[k], then folded
/// into C with alpha (and beta on the first k-block only).
void micro_kernel(const float* apanel, const float* bpanel, std::size_t kc,
                  float alpha, float beta, bool first_kblock, float* c,
                  std::size_t ldc, std::size_t rows, std::size_t cols) {
  float acc[kMR][kNR] = {};
  for (std::size_t k = 0; k < kc; ++k) {
    const float* bk = bpanel + k * kNR;
    const float* ak = apanel + k * kMR;
    for (std::size_t i = 0; i < kMR; ++i) {
      const float av = ak[i];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += av * bk[j];
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    float* crow = c + i * ldc;
    if (first_kblock) {
      if (beta == 0.0f) {
        for (std::size_t j = 0; j < cols; ++j) crow[j] = alpha * acc[i][j];
      } else {
        for (std::size_t j = 0; j < cols; ++j)
          crow[j] = beta * crow[j] + alpha * acc[i][j];
      }
    } else {
      for (std::size_t j = 0; j < cols; ++j) crow[j] += alpha * acc[i][j];
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  OB_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
             "gemm: null operand");
  OB_REQUIRE(lda >= (trans_a ? m : k), "gemm: lda too small");
  OB_REQUIRE(ldb >= (trans_b ? k : n), "gemm: ldb too small");
  OB_REQUIRE(ldc >= n, "gemm: ldc too small");
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Pure beta-scaling of C (and beta == 0 must overwrite, not multiply).
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else if (beta != 1.0f) {
        for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }

  // Packing scratch, rounded up to whole micro-panels. Reused across calls
  // (thread_local: kernels may run concurrently on pool workers); sized by
  // the fixed block caps, so it stops growing after the first large call.
  static thread_local std::vector<float> apack;
  static thread_local std::vector<float> bpack;
  apack.resize(((std::min(m, kMC) + kMR - 1) / kMR) * kMR *
               std::min(k, kKC));
  bpack.resize(((std::min(n, kNC) + kNR - 1) / kNR) * kNR *
               std::min(k, kKC));

  for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
    const std::size_t nc = std::min(kNC, n - j0);
    const std::size_t npanels = (nc + kNR - 1) / kNR;
    for (std::size_t k0 = 0; k0 < k; k0 += kKC) {
      const std::size_t kc = std::min(kKC, k - k0);
      const bool first_kblock = k0 == 0;
      pack_b(b, ldb, trans_b, k0, j0, kc, nc, bpack.data());
      for (std::size_t i0 = 0; i0 < m; i0 += kMC) {
        const std::size_t mc = std::min(kMC, m - i0);
        const std::size_t mpanels = (mc + kMR - 1) / kMR;
        pack_a(a, lda, trans_a, i0, k0, mc, kc, apack.data());
        for (std::size_t pj = 0; pj < npanels; ++pj) {
          const std::size_t j = pj * kNR;
          const std::size_t cols = std::min(kNR, nc - j);
          const float* bpanel = bpack.data() + pj * kc * kNR;
          for (std::size_t pi = 0; pi < mpanels; ++pi) {
            const std::size_t i = pi * kMR;
            const std::size_t rows = std::min(kMR, mc - i);
            micro_kernel(apack.data() + pi * kc * kMR, bpanel, kc, alpha,
                         beta, first_kblock, c + (i0 + i) * ldc + j0 + j, ldc,
                         rows, cols);
          }
        }
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  OB_REQUIRE(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
  OB_REQUIRE(a.extent(1) == b.extent(0), "matmul: inner dimension mismatch");
  Tensor c({a.extent(0), b.extent(1)});
  gemm(false, false, a.extent(0), b.extent(1), a.extent(1), 1.0f, a.data(),
       a.extent(1), b.data(), b.extent(1), 0.0f, c.data(), b.extent(1));
  return c;
}

std::size_t conv_out_extent(std::size_t in, std::size_t kernel,
                            std::size_t stride, std::size_t pad) {
  OB_REQUIRE(kernel > 0 && stride > 0, "conv_out_extent: kernel/stride >= 1");
  OB_REQUIRE(in + 2 * pad >= kernel, "conv_out_extent: input smaller than kernel");
  return (in + 2 * pad - kernel) / stride + 1;
}

void im2col(const float* img, std::size_t channels, std::size_t h,
            std::size_t w, std::size_t kernel, std::size_t stride,
            std::size_t pad, float* cols) {
  const std::size_t oh = conv_out_extent(h, kernel, stride, pad);
  const std::size_t ow = conv_out_extent(w, kernel, stride, pad);
  float* dst = cols;  // rows stream in (c, ky, kx) order
  for (std::size_t c = 0; c < channels; ++c) {
    const float* plane = img + c * h * w;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
            std::fill(dst, dst + ow, 0.0f);
            dst += ow;
            continue;
          }
          const float* row = plane + static_cast<std::size_t>(iy) * w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            *dst++ = (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                         ? 0.0f
                         : row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::size_t channels, std::size_t h,
            std::size_t w, std::size_t kernel, std::size_t stride,
            std::size_t pad, float* img) {
  const std::size_t oh = conv_out_extent(h, kernel, stride, pad);
  const std::size_t ow = conv_out_extent(w, kernel, stride, pad);
  const float* src = cols;
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = img + c * h * w;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
            src += ow;
            continue;
          }
          float* row = plane + static_cast<std::size_t>(iy) * w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const float v = *src++;
            if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(w))
              row[static_cast<std::size_t>(ix)] += v;
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& img, std::size_t kernel, std::size_t stride,
              std::size_t pad) {
  OB_REQUIRE(img.rank() == 3, "im2col: (C, H, W) tensor required");
  const std::size_t c = img.extent(0), h = img.extent(1), w = img.extent(2);
  const std::size_t oh = conv_out_extent(h, kernel, stride, pad);
  const std::size_t ow = conv_out_extent(w, kernel, stride, pad);
  Tensor cols({c * kernel * kernel, oh * ow});
  im2col(img.data(), c, h, w, kernel, stride, pad, cols.data());
  return cols;
}

Tensor col2im(const Tensor& cols, std::size_t channels, std::size_t h,
              std::size_t w, std::size_t kernel, std::size_t stride,
              std::size_t pad) {
  OB_REQUIRE(cols.rank() == 2, "col2im: (C*k*k, OH*OW) tensor required");
  const std::size_t oh = conv_out_extent(h, kernel, stride, pad);
  const std::size_t ow = conv_out_extent(w, kernel, stride, pad);
  OB_REQUIRE(cols.extent(0) == channels * kernel * kernel &&
                 cols.extent(1) == oh * ow,
             "col2im: column matrix shape mismatch");
  Tensor img({channels, h, w});
  col2im(cols.data(), channels, h, w, kernel, stride, pad, img.data());
  return img;
}

}  // namespace omniboost::tensor
