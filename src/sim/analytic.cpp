#include "sim/analytic.hpp"

#include <algorithm>
#include <limits>

#include "sim/des.hpp"
#include "util/require.hpp"

namespace omniboost::sim {

ThroughputReport AnalyticModel::evaluate(const NetworkList& nets,
                                         const Mapping& mapping) const {
  OB_REQUIRE(!nets.empty(), "AnalyticModel::evaluate: empty workload");
  for (const auto* n : nets)
    OB_REQUIRE(n != nullptr, "AnalyticModel::evaluate: null network");

  const Scene scene = build_scene(nets, mapping, cost_);
  ThroughputReport report;
  report.per_dnn_rate.assign(nets.size(), 0.0);
  report.component_penalty = scene.penalty;

  if (!scene.fits_in_memory) {
    report.feasible = false;
    return report;
  }

  // Load per component: total service time demanded per frame round.
  std::array<double, device::kNumComponents> load{};
  for (const SegmentInfo& seg : scene.segments)
    load[device::component_index(seg.span.comp)] += seg.service_time_s;

  for (std::size_t i = 0; i < nets.size(); ++i) {
    double bottleneck = 0.0;
    for (std::size_t sid : scene.by_dnn[i]) {
      const SegmentInfo& seg = scene.segments[sid];
      // The stream cannot run faster than its most-contended component...
      bottleneck =
          std::max(bottleneck, load[device::component_index(seg.span.comp)]);
      // ...nor faster than its slowest inter-stage transfer.
      bottleneck = std::max(bottleneck, seg.transfer_out_s);
    }
    OB_ENSURE(bottleneck > 0.0, "AnalyticModel: degenerate bottleneck");
    report.per_dnn_rate[i] = 1.0 / bottleneck;
  }

  finalize_report(report, scene, nets, cost_.device());
  return report;
}

namespace {

/// Minimal achievable max-bin level when \p remaining work is spread over the
/// kNumComponents bins with the given committed floors (water-filling).
double waterfill_minmax(std::array<double, device::kNumComponents> bins,
                        double remaining) {
  std::sort(bins.begin(), bins.end());
  double level = bins[0];
  for (std::size_t c = 0; c + 1 < bins.size(); ++c) {
    const double width = static_cast<double>(c + 1);
    const double cap = (bins[c + 1] - level) * width;
    if (remaining <= cap) return std::max(bins.back(), level + remaining / width);
    remaining -= cap;
    level = bins[c + 1];
  }
  level += remaining / static_cast<double>(bins.size());
  return std::max(bins.back(), level);
}

}  // namespace

RelaxedBound::RelaxedBound(const NetworkList& nets,
                           const device::CostModel& cost)
    : cost_(&cost) {
  OB_REQUIRE(!nets.empty(), "RelaxedBound: empty workload");
  const device::DeviceSpec& dev = cost.device();
  overhead_s_ = dev.per_inference_overhead_s;

  double weight_floor_bytes =
      dev.per_stream_overhead_bytes * static_cast<double>(nets.size());
  time_.resize(nets.size());
  tmin_.resize(nets.size());
  out_bytes_.resize(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    OB_REQUIRE(nets[i] != nullptr, "RelaxedBound: null network");
    const models::NetworkDesc& net = *nets[i];
    time_[i].resize(net.num_layers());
    tmin_[i].resize(net.num_layers());
    out_bytes_[i].resize(net.num_layers());
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < device::kNumComponents; ++c) {
        const double t =
            cost.layer_time(net.layers[l], static_cast<device::ComponentId>(c));
        time_[i][l][c] = t;
        best = std::min(best, t);
      }
      tmin_[i][l] = best;
      out_bytes_[i][l] = net.layers[l].output_bytes();
      weight_floor_bytes += net.layers[l].weight_bytes;
    }
  }
  // Segment working sets are weights plus at least one activation, so the
  // weights-plus-stream-overhead floor already deciding infeasibility makes
  // every completion infeasible (build_scene's fits_in_memory check).
  memory_infeasible_ = weight_floor_bytes > dev.memory_budget_bytes;
}

double RelaxedBound::upper_bound(
    const std::vector<PartialAssignment>& partial) const {
  OB_REQUIRE(partial.size() == time_.size(),
             "RelaxedBound: partial/workload size mismatch");
  if (memory_infeasible_) return 0.0;

  // Committed uncontended load per component, across all streams, plus the
  // total best-case remaining work that must still land somewhere.
  std::array<double, device::kNumComponents> committed{};
  double remaining = 0.0;
  double worst_stream_floor = overhead_s_;

  for (std::size_t i = 0; i < partial.size(); ++i) {
    const PartialAssignment& pa = partial[i];
    OB_REQUIRE(pa.size() == time_[i].size(),
               "RelaxedBound: partial length mismatch");
    double own_total = overhead_s_;
    double forced_transfer = 0.0;
    // The per-inference overhead is charged to the stream's first segment,
    // i.e. to whatever component layer 0 lands on.
    if (pa[0] >= 0)
      committed[static_cast<std::size_t>(pa[0])] += overhead_s_;
    else
      remaining += overhead_s_;
    for (std::size_t l = 0; l < pa.size(); ++l) {
      if (pa[l] < 0) {
        own_total += tmin_[i][l];
        remaining += tmin_[i][l];
        continue;
      }
      const auto c = static_cast<std::size_t>(pa[l]);
      OB_REQUIRE(c < device::kNumComponents,
                 "RelaxedBound: component index out of range");
      committed[c] += time_[i][l][c];
      own_total += time_[i][l][c];
      if (l + 1 < pa.size() && pa[l + 1] >= 0 && pa[l + 1] != pa[l]) {
        // Adjacent committed layers on distinct components force a pipeline
        // cut with exactly this transfer in every completion.
        forced_transfer = std::max(
            forced_transfer,
            cost_->transfer_time(out_bytes_[i][l],
                                 static_cast<device::ComponentId>(pa[l]),
                                 static_cast<device::ComponentId>(pa[l + 1])));
      }
    }
    double floor = std::max(
        overhead_s_, own_total / static_cast<double>(device::kNumComponents));
    floor = std::max(floor, forced_transfer);
    worst_stream_floor = std::max(worst_stream_floor, floor);
  }

  // Second pass: with the full committed picture, every stream's bottleneck
  // is at least the committed load of any component it has a layer on.
  for (std::size_t i = 0; i < partial.size(); ++i) {
    const PartialAssignment& pa = partial[i];
    double floor = 0.0;
    bool seen[device::kNumComponents] = {false, false, false};
    for (std::size_t l = 0; l < pa.size(); ++l) {
      if (pa[l] < 0) continue;
      const auto c = static_cast<std::size_t>(pa[l]);
      if (!seen[c]) {
        seen[c] = true;
        floor = std::max(floor, committed[c]);
      }
    }
    worst_stream_floor = std::max(worst_stream_floor, floor);
  }

  const double spread = waterfill_minmax(committed, remaining);
  const double bottleneck = std::max(worst_stream_floor, spread);
  OB_ENSURE(bottleneck > 0.0, "RelaxedBound: degenerate bottleneck");
  // Relative + absolute inflation keeps exact-arithmetic ties admissible
  // under floating-point reassociation.
  return (1.0 / bottleneck) * (1.0 + 1e-9) + 1e-12;
}

double relaxed_throughput_bound(const NetworkList& nets,
                                const std::vector<PartialAssignment>& partial,
                                const device::CostModel& cost) {
  return RelaxedBound(nets, cost).upper_bound(partial);
}

}  // namespace omniboost::sim
