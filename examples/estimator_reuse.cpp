/// \file estimator_reuse.cpp
/// The design-time / run-time split in practice: train the throughput
/// estimator once, persist it to disk, then bring up a fresh "deployment"
/// process that loads the weights and schedules immediately — the workflow
/// an embedded integrator would actually ship (no training dependency on
/// the target).

#include <cstdio>
#include <filesystem>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"

using namespace omniboost;

int main() {
  const std::string weights_path =
      (std::filesystem::temp_directory_path() / "omniboost_estimator.bin")
          .string();

  models::ModelZoo zoo;
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(spec);

  // --- Design time (run on a workstation, once per board model).
  {
    std::printf("[design time] profiling + dataset + training...\n");
    core::DatasetConfig dc;
    dc.samples = 150;
    const core::SampleSet data =
        core::generate_dataset(zoo, embedding, board, dc);
    core::ThroughputEstimator estimator(embedding.models_dim(),
                                        embedding.layers_dim());
    nn::L1Loss l1;
    nn::TrainConfig tc;
    tc.epochs = 40;
    const auto hist = estimator.fit(data, 30, l1, tc);
    estimator.save_file(weights_path);
    std::printf("[design time] saved %zu-parameter estimator to %s "
                "(val L1 %.4f)\n\n",
                estimator.num_params(), weights_path.c_str(),
                hist.val_loss.back());
  }

  // --- Run time (the deployment process: load, schedule, go).
  {
    std::printf("[run time] loading estimator and scheduling...\n");
    auto estimator = std::make_shared<const core::ThroughputEstimator>(
        core::ThroughputEstimator::load_file(weights_path));

    const workload::Workload mix{{models::ModelId::kResNet34,
                                  models::ModelId::kSqueezeNet,
                                  models::ModelId::kAlexNet}};
    core::OmniBoostScheduler scheduler(zoo, embedding, estimator);
    const core::ScheduleResult plan = scheduler.schedule(mix);

    const double t =
        board.simulate(mix.resolve(zoo), plan.mapping).avg_throughput;
    std::printf("[run time] %s -> T = %.2f inf/s (decision %.0f ms, no "
                "training performed)\n",
                mix.describe().c_str(), t, plan.decision_seconds * 1e3);
  }

  std::filesystem::remove(weights_path);
  return 0;
}
