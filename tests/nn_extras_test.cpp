// The nn library extensions: Dropout, RMSprop, learning-rate schedulers,
// Huber loss, and binary parameter serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/dropout.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/schedulers.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace omniboost;
using tensor::Tensor;

// --- Dropout ----------------------------------------------------------------

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(nn::Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0f), std::invalid_argument);
  EXPECT_NO_THROW(nn::Dropout(0.0f));
}

TEST(Dropout, InferenceIsIdentity) {
  nn::Dropout drop(0.5f);
  drop.set_training(false);
  Tensor x({4, 8}, 1.5f);
  EXPECT_EQ(drop.forward(x), x);
  // Backward in inference mode is a pass-through too.
  Tensor g({4, 8}, 0.25f);
  EXPECT_EQ(drop.backward(g), g);
}

TEST(Dropout, ZeroProbabilityIsIdentityInTraining) {
  nn::Dropout drop(0.0f);
  drop.set_training(true);
  Tensor x({2, 5}, 3.0f);
  EXPECT_EQ(drop.forward(x), x);
}

TEST(Dropout, TrainingDropsAndRescales) {
  nn::Dropout drop(0.5f, 42);
  drop.set_training(true);
  Tensor x({1, 1000}, 1.0f);
  const Tensor y = drop.forward(x);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // survivor scaled by 1/(1-p)
    }
  }
  // Binomial(1000, 0.5): 3-sigma band is about +-47.
  EXPECT_GT(zeros, 400u);
  EXPECT_LT(zeros, 600u);
  // Expected activation preserved (inverted dropout).
  EXPECT_NEAR(y.mean(), 1.0f, 0.1f);
}

TEST(Dropout, BackwardUsesForwardMask) {
  nn::Dropout drop(0.3f, 7);
  drop.set_training(true);
  Tensor x({1, 64}, 1.0f);
  const Tensor y = drop.forward(x);
  Tensor g({1, 64}, 1.0f);
  const Tensor gx = drop.backward(g);
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Gradient flows exactly where the activation survived, with the same
    // scale factor.
    EXPECT_FLOAT_EQ(gx[i], y[i]);
  }
}

TEST(Dropout, MaskDiffersAcrossCalls) {
  nn::Dropout drop(0.5f, 3);
  drop.set_training(true);
  Tensor x({1, 256}, 1.0f);
  const Tensor a = drop.forward(x);
  const Tensor b = drop.forward(x);
  EXPECT_NE(a, b) << "two forward passes produced the same dropout mask";
}

// --- RMSprop ----------------------------------------------------------------

TEST(RMSprop, RejectsBadHyperparameters) {
  nn::Param p({tensor::Shape{2}});
  EXPECT_THROW(nn::RMSprop({&p}, -1.0f), std::invalid_argument);
  EXPECT_THROW(nn::RMSprop({&p}, 0.1f, 1.5f), std::invalid_argument);
}

TEST(RMSprop, ConvergesOnQuadraticBowl) {
  // Minimize f(w) = 0.5 * sum((w - t)^2) by hand-fed gradients.
  nn::Param w({tensor::Shape{4}});
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  for (std::size_t i = 0; i < 4; ++i) w.value[i] = 10.0f;

  nn::RMSprop opt({&w}, 0.05f);
  for (int it = 0; it < 800; ++it) {
    for (std::size_t i = 0; i < 4; ++i) w.grad[i] = w.value[i] - target[i];
    opt.step();
    opt.zero_grad();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value[i], target[i], 0.05f) << "coordinate " << i;
  }
}

TEST(RMSprop, LrIsAdjustable) {
  nn::Param p({tensor::Shape{1}});
  nn::RMSprop opt({&p}, 0.1f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.1f);
  opt.set_lr(0.01f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.01f);
  EXPECT_THROW(opt.set_lr(0.0f), std::invalid_argument);
}

// --- LR schedulers ----------------------------------------------------------

TEST(LrSchedulers, ConstantIsConstant) {
  nn::ConstantLr sched(0.01f);
  for (std::size_t e : {0u, 1u, 50u, 1000u}) {
    EXPECT_FLOAT_EQ(sched.lr_at(e), 0.01f);
  }
  EXPECT_THROW(nn::ConstantLr(0.0f), std::invalid_argument);
}

TEST(LrSchedulers, StepDecaysAtBoundaries) {
  nn::StepLr sched(1.0f, 10, 0.5f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(9), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_at(10), 0.5f);
  EXPECT_FLOAT_EQ(sched.lr_at(19), 0.5f);
  EXPECT_FLOAT_EQ(sched.lr_at(20), 0.25f);
}

TEST(LrSchedulers, CosineEndpointsAndMonotonicity) {
  nn::CosineLr sched(0.1f, 100, 0.001f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.1f);
  EXPECT_NEAR(sched.lr_at(50), 0.5f * (0.1f + 0.001f), 1e-4f);
  // Strictly decreasing over the annealing window.
  for (std::size_t e = 1; e < 100; ++e) {
    EXPECT_LT(sched.lr_at(e), sched.lr_at(e - 1)) << "epoch " << e;
  }
  EXPECT_GT(sched.lr_at(99), 0.0f);
}

TEST(LrSchedulers, CosineWarmupRampsUp) {
  nn::CosineLr sched(0.1f, 100, 0.0f, 10);
  EXPECT_GT(sched.lr_at(0), 0.0f);
  for (std::size_t e = 1; e < 10; ++e) {
    EXPECT_GT(sched.lr_at(e), sched.lr_at(e - 1));
  }
  EXPECT_FLOAT_EQ(sched.lr_at(9), 0.1f);  // end of warm-up hits base lr
}

TEST(LrSchedulers, CosineRejectsBadConfig) {
  EXPECT_THROW(nn::CosineLr(0.1f, 0), std::invalid_argument);
  EXPECT_THROW(nn::CosineLr(0.1f, 10, 0.2f), std::invalid_argument);
  EXPECT_THROW(nn::CosineLr(0.1f, 10, 0.0f, 10), std::invalid_argument);
}

TEST(LrSchedulers, ApplyDrivesOptimizer) {
  nn::Param p({tensor::Shape{1}});
  nn::SGD opt({&p}, 1.0f);
  nn::StepLr sched(1.0f, 5, 0.1f);
  sched.apply(opt, 7);
  EXPECT_FLOAT_EQ(opt.lr(), 0.1f);
}

TEST(LrSchedulers, TrainerHonoursSchedule) {
  // A linear probe y = 2x - 1 trained with a cosine schedule: the run must
  // converge, proving the schedule path is wired through train_regression.
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Linear>(1, 1);
  util::Rng rng(4);
  net->init(rng);

  nn::Dataset data;
  for (int i = 0; i < 64; ++i) {
    const float x = static_cast<float>(i) / 32.0f - 1.0f;
    data.inputs.push_back(Tensor::from_vector({x}));
    data.targets.push_back(Tensor::from_vector({2.0f * x - 1.0f}));
  }

  nn::CosineLr sched(0.05f, 60, 1e-4f);
  nn::TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 8;
  cfg.weight_decay = 0.0f;
  cfg.lr_schedule = &sched;
  nn::MSELoss mse;
  const auto history = nn::train_regression(*net, mse, data, {}, cfg);
  EXPECT_LT(history.train_loss.back(), 1e-3)
      << "cosine-scheduled training failed to converge";
}

// --- Huber loss -------------------------------------------------------------

TEST(HuberLoss, MatchesMseInQuadraticZone) {
  // For |d| <= delta, huber = 0.5 d^2: exactly half of the MSE value.
  nn::HuberLoss huber(10.0f);
  nn::MSELoss mse;
  Tensor pred = Tensor::from_vector({1.0f, -2.0f, 0.5f});
  Tensor target = Tensor::from_vector({0.5f, -1.0f, 0.0f});
  const auto h = huber.compute(pred, target);
  const auto m = mse.compute(pred, target);
  EXPECT_NEAR(h.value, 0.5f * m.value, 1e-6f);
}

TEST(HuberLoss, MatchesScaledL1FarOutside) {
  // For |d| >> delta, huber ~= delta * (|d| - delta/2): gradient is L1-like.
  nn::HuberLoss huber(1.0f);
  Tensor pred = Tensor::from_vector({100.0f});
  Tensor target = Tensor::from_vector({0.0f});
  const auto h = huber.compute(pred, target);
  EXPECT_NEAR(h.value, 99.5f, 1e-3f);
  EXPECT_FLOAT_EQ(h.grad[0], 1.0f);  // clipped at delta / n with n = 1
}

TEST(HuberLoss, GradientMatchesNumericDifference) {
  nn::HuberLoss huber(0.7f);
  Tensor pred = Tensor::from_vector({0.3f, -1.5f, 0.69f, 0.71f});
  Tensor target = Tensor::from_vector({0.0f, 0.0f, 0.0f, 0.0f});
  const auto r = huber.compute(pred, target);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    Tensor up = pred, down = pred;
    up[i] += eps;
    down[i] -= eps;
    const float numeric =
        (huber.compute(up, target).value - huber.compute(down, target).value) /
        (2 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 5e-3f) << "coordinate " << i;
  }
}

TEST(HuberLoss, RejectsBadDeltaAndShapes) {
  EXPECT_THROW(nn::HuberLoss(0.0f), std::invalid_argument);
  nn::HuberLoss huber(1.0f);
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(huber.compute(a, b), std::invalid_argument);
}

// --- Serialization ----------------------------------------------------------

/// A small conv net with every parameterized layer kind.
std::unique_ptr<nn::Sequential> make_net(std::uint64_t seed) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Conv2d>(2, 4, 3, 1, 1);
  net->emplace<nn::BatchNorm2d>(4);
  net->emplace<nn::GELU>();
  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(4, 3);
  util::Rng rng(seed);
  net->init(rng);
  net->set_training(false);
  return net;
}

TEST(Serialize, RoundTripRestoresExactOutputs) {
  auto a = make_net(1);
  auto b = make_net(2);  // different weights

  Tensor x({1, 2, 8, 8});
  util::Rng rng(9);
  x.apply([&](float) { return static_cast<float>(rng.uniform(-1, 1)); });

  ASSERT_NE(a->forward(x), b->forward(x));

  std::stringstream buf;
  nn::save_params(*a, buf);
  nn::load_params(*b, buf);
  EXPECT_EQ(a->forward(x), b->forward(x))
      << "outputs differ after weight transplant";
}

TEST(Serialize, RejectsForeignStream) {
  auto net = make_net(1);
  std::stringstream buf("definitely not a weight file");
  EXPECT_THROW(nn::load_params(*net, buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  auto net = make_net(1);
  std::stringstream buf;
  nn::save_params(*net, buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW(nn::load_params(*net, cut), std::runtime_error);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto small = make_net(1);
  auto other = std::make_unique<nn::Sequential>();
  other->emplace<nn::Linear>(4, 2);
  util::Rng rng(1);
  other->init(rng);

  std::stringstream buf;
  nn::save_params(*small, buf);
  EXPECT_THROW(nn::load_params(*other, buf), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ob_serialize_test.bin")
          .string();
  auto a = make_net(5);
  auto b = make_net(6);
  nn::save_params_file(*a, path);
  nn::load_params_file(*b, path);

  Tensor x({1, 2, 8, 8}, 0.3f);
  EXPECT_EQ(a->forward(x), b->forward(x));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  auto net = make_net(1);
  EXPECT_THROW(nn::load_params_file(*net, "/nonexistent/dir/weights.bin"),
               std::runtime_error);
}

}  // namespace
