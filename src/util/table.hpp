#pragma once
/// \file table.hpp
/// Plain-text table and CSV emission used by the bench harness so every
/// figure/table of the paper is regenerated as a copy-pasteable block.

#include <iosfwd>
#include <string>
#include <vector>

namespace omniboost::util {

/// Column-aligned text table with an optional CSV dump.
///
/// Usage:
/// \code
///   Table t({"mix", "Baseline", "MOSAIC", "GA", "OmniBoost"});
///   t.add_row({"mix-1", "1.00", "1.31", "1.35", "1.54"});
///   t.print(std::cout);
/// \endcode
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Writes an aligned, boxed text table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing comma/quote get quoted).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p precision fractional digits.
std::string fmt(double v, int precision = 3);

}  // namespace omniboost::util
