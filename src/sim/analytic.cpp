#include "sim/analytic.hpp"

#include <algorithm>

#include "sim/des.hpp"
#include "util/require.hpp"

namespace omniboost::sim {

ThroughputReport AnalyticModel::evaluate(const NetworkList& nets,
                                         const Mapping& mapping) const {
  OB_REQUIRE(!nets.empty(), "AnalyticModel::evaluate: empty workload");
  for (const auto* n : nets)
    OB_REQUIRE(n != nullptr, "AnalyticModel::evaluate: null network");

  const Scene scene = build_scene(nets, mapping, cost_);
  ThroughputReport report;
  report.per_dnn_rate.assign(nets.size(), 0.0);
  report.component_penalty = scene.penalty;

  if (!scene.fits_in_memory) {
    report.feasible = false;
    return report;
  }

  // Load per component: total service time demanded per frame round.
  std::array<double, device::kNumComponents> load{};
  for (const SegmentInfo& seg : scene.segments)
    load[device::component_index(seg.span.comp)] += seg.service_time_s;

  for (std::size_t i = 0; i < nets.size(); ++i) {
    double bottleneck = 0.0;
    for (std::size_t sid : scene.by_dnn[i]) {
      const SegmentInfo& seg = scene.segments[sid];
      // The stream cannot run faster than its most-contended component...
      bottleneck =
          std::max(bottleneck, load[device::component_index(seg.span.comp)]);
      // ...nor faster than its slowest inter-stage transfer.
      bottleneck = std::max(bottleneck, seg.transfer_out_s);
    }
    OB_ENSURE(bottleneck > 0.0, "AnalyticModel: degenerate bottleneck");
    report.per_dnn_rate[i] = 1.0 / bottleneck;
  }

  finalize_report(report, scene, nets, cost_.device());
  return report;
}

}  // namespace omniboost::sim
