/// \file scheduler_comparison.cpp
/// Side-by-side comparison of every scheduler the library ships — the
/// paper's comparison points (Baseline, MOSAIC, GA) plus the search-strategy
/// family (Greedy, RandomSearch, HillClimb, Annealing) and OmniBoost — on
/// one heavy 4-DNN workload. Shows the central trade-off the paper charts in
/// §V-B: decision cost vs achieved throughput.

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/ga.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sched/mosaic.hpp"
#include "sched/search_common.hpp"
#include "util/table.hpp"

using namespace omniboost;

int main() {
  const workload::Workload mix{
      {models::ModelId::kVgg19, models::ModelId::kResNet50,
       models::ModelId::kInceptionV3, models::ModelId::kMobileNet}};

  models::ModelZoo zoo;
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(spec);

  std::printf("workload: %s\n", mix.describe().c_str());
  std::printf("design time: training the throughput estimator...\n\n");

  core::DatasetConfig dc;
  dc.samples = 200;
  const core::SampleSet data = core::generate_dataset(zoo, embedding, board, dc);
  auto estimator = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 50;
  estimator->fit(data, 40, l1, tc);

  const auto factory =
      sched::estimator_evaluator_factory(zoo, embedding, estimator);

  std::vector<std::unique_ptr<core::IScheduler>> schedulers;
  schedulers.push_back(std::make_unique<sched::AllOnScheduler>(
      zoo, device::ComponentId::kGpu, "Baseline"));
  schedulers.push_back(std::make_unique<sched::MosaicScheduler>(zoo, spec));
  schedulers.push_back(std::make_unique<sched::GaScheduler>(zoo, spec));
  schedulers.push_back(std::make_unique<sched::GreedyScheduler>(zoo, spec));
  schedulers.push_back(std::make_unique<sched::RandomSearchScheduler>(
      "RandomSearch", zoo, factory, sched::LocalSearchConfig{}));
  schedulers.push_back(std::make_unique<sched::HillClimbScheduler>(
      "HillClimb", zoo, factory, sched::HillClimbConfig{}));
  schedulers.push_back(std::make_unique<sched::SimulatedAnnealingScheduler>(
      "Annealing", zoo, factory, sched::AnnealingConfig{}));
  schedulers.push_back(std::make_unique<core::OmniBoostScheduler>(
      zoo, embedding, estimator));

  const auto nets = mix.resolve(zoo);
  double baseline_t = 0.0;

  util::Table t({"scheduler", "decision (ms)", "queries", "board cost (s)",
                 "T (inf/s)", "vs baseline"});
  for (const auto& s : schedulers) {
    const core::ScheduleResult r = s->schedule(mix);
    const double measured = board.simulate(nets, r.mapping).avg_throughput;
    if (s->name() == "Baseline") baseline_t = measured;
    t.add_row({s->name(), util::fmt(r.decision_seconds * 1e3, 1),
               std::to_string(r.evaluations), util::fmt(r.board_seconds, 0),
               util::fmt(measured, 2),
               baseline_t > 0.0 ? "x" + util::fmt(measured / baseline_t, 2)
                                : "-"});
  }
  t.print(std::cout);

  std::printf("\n'board cost' is simulated on-device measurement time a "
              "measurement-driven scheduler (the GA) would burn per decision "
              "— the overhead §V-B attributes to it. Model-driven schedulers "
              "pay it once, at design time.\n");
  return 0;
}
