/// \file bench_fault_recovery.cpp
/// Fault-tolerant fleet serving: how much served throughput survives board
/// failures and throttles, and what failover/shedding/downtime it costs?
///
/// The sweep draws one Poisson arrival scenario (seeded — identical offered
/// load in every cell), then weaves in seeded board-fault processes at three
/// severities (none / mild / harsh) and replays each through core::Cluster
/// fleets of 2..N boards under every placement policy, with per-board Greedy
/// schedulers and rebalance-on-recovery enabled. The "T vs no-fault" column
/// is the recovery ratio against the same fleet/policy cell without faults.
///
/// Shapes to look for: mild faults recover most of the no-fault throughput
/// (failovers absorb the failures) while harsh faults shed streams and bleed
/// throughput; more boards mean better recovery at equal severity (more
/// survivors to fail over to); downtime and degraded epochs grow with fault
/// rate, not fleet size.
///
/// Table: fault_recovery (BENCH_fault_recovery.json).

#include "bench_common.hpp"

#include <map>

#include "core/cluster.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/faults.hpp"
#include "workload/scenario.hpp"

using namespace omniboost;

namespace {

struct FaultLevel {
  const char* name;
  bool enabled;
  workload::FaultProcess process;
};

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 31;
  bench::banner("fault recovery — fault severity x fleet size x placement",
                "beyond the paper: fault-tolerant fleet serving", kSeed);

  const models::ModelZoo zoo;
  const double horizon_s = static_cast<double>(bench::scaled(120, 15));
  const std::size_t max_fleet = bench::scaled(4, 3);

  workload::ArrivalProcess p;
  p.rate_per_s = 0.5;
  p.mean_lifetime_s = 12.0;
  p.max_concurrent = models::kNumModels;
  util::Rng rng(util::fork_stream(kSeed, 0));
  const workload::Scenario base = workload::sample_scenario(p, horizon_s, rng);
  std::printf("offered load: %s\n\n", base.describe().c_str());
  if (base.empty()) {
    std::printf("(empty scenario at this horizon; nothing to sweep)\n");
    return 0;
  }

  workload::FaultProcess mild;
  mild.mtbf_s = 60.0;
  mild.mttr_s = 8.0;
  mild.throttle_fraction = 0.5;
  workload::FaultProcess harsh;
  harsh.mtbf_s = 20.0;
  harsh.mttr_s = 15.0;
  harsh.throttle_fraction = 0.25;
  const FaultLevel levels[] = {
      {"none", false, {}},
      {"mild", true, mild},
      {"harsh", true, harsh},
  };

  util::Table table({"faults", "boards", "policy", "admitted", "shed",
                     "failovers", "rebalances", "degraded ep", "downtime s",
                     "fleet T inf/s", "T vs no-fault %"});

  // Recovery baseline per (fleet size, policy): the no-fault fleet T.
  std::map<std::pair<std::size_t, std::string>, double> baseline;

  for (const FaultLevel& level : levels) {
    std::printf("--- faults %s%s ---\n", level.name,
                level.enabled
                    ? (" (" + workload::describe(level.process) + ")").c_str()
                    : "");
    for (std::size_t n = 2; n <= max_fleet; ++n) {
      const workload::Scenario scenario =
          level.enabled
              ? workload::with_faults(base, level.process, n, kSeed)
              : base;
      core::ClusterConfig cc;
      cc.rebalance_on_recovery = true;
      const core::Cluster cluster(zoo, core::make_heterogeneous_fleet(n), cc);
      const core::SchedulerFactory factory =
          [&](std::size_t i) -> std::unique_ptr<core::IScheduler> {
        return std::make_unique<sched::GreedyScheduler>(
            zoo, cluster.boards()[i].device);
      };
      for (const std::string& kind : core::placement_policy_kinds()) {
        const auto policy = core::make_placement_policy(kind);
        const core::ClusterReport rep =
            cluster.run(factory, scenario, *policy);
        const auto key = std::make_pair(n, kind);
        if (!level.enabled) baseline[key] = rep.fleet_throughput;
        const double base_t = baseline.count(key) ? baseline[key] : 0.0;
        const double recovery =
            base_t > 0.0 ? 100.0 * rep.fleet_throughput / base_t : 0.0;
        table.add_row({level.name, std::to_string(n), kind,
                       std::to_string(rep.admitted_streams),
                       std::to_string(rep.shed_streams),
                       std::to_string(rep.failovers),
                       std::to_string(rep.rebalances),
                       std::to_string(rep.degraded_epochs),
                       util::fmt(rep.downtime_board_s, 1),
                       util::fmt(rep.fleet_throughput, 3),
                       util::fmt(recovery, 1)});
      }
      std::printf("  %zu boards swept across %zu policies\n", n,
                  core::placement_policy_kinds().size());
    }
    std::printf("\n");
  }

  bench::report("fault_recovery", table);
  std::printf("\ncheck: mild faults keep T vs no-fault high (failovers absorb "
              "failures); harsh faults shed streams and bleed throughput; "
              "recovery improves with fleet size at equal severity\n");
  return 0;
}
