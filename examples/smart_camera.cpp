/// \file smart_camera.cpp
/// Latency-aware scenario: a smart security camera runs three vision DNNs
/// concurrently (detector backbone, re-identification classifier, scene
/// segmenter — the multi-DNN services the paper's introduction motivates).
/// Throughput decides how many camera streams the box sustains, but an
/// alarm pipeline also cares about *tail latency*. This example uses the
/// traced simulator to check a p99 frame-latency SLO across scheduler
/// choices and pick the best mapping that honours it.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "util/table.hpp"

using namespace omniboost;

namespace {

struct Candidate {
  std::string name;
  sim::Mapping mapping;
};

}  // namespace

int main() {
  // The camera's workload: detection backbone (ResNet-50), person
  // re-identification (MobileNet), scene segmentation backbone (VGG-16).
  const workload::Workload camera_mix{{models::ModelId::kResNet50,
                                       models::ModelId::kMobileNet,
                                       models::ModelId::kVgg16}};
  constexpr double kP99SloSeconds = 3.0;  // alarm path budget

  models::ModelZoo zoo;
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(spec);

  std::printf("smart camera workload: %s\n", camera_mix.describe().c_str());
  std::printf("p99 frame-latency SLO: %.1f s\n\n", kP99SloSeconds);

  // Design time (abbreviated campaign for example runtime).
  core::DatasetConfig dc;
  dc.samples = 150;
  const core::SampleSet data = core::generate_dataset(zoo, embedding, board, dc);
  auto estimator = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 40;
  estimator->fit(data, 30, l1, tc);

  // Candidate mappings from three schedulers.
  std::vector<Candidate> candidates;
  {
    auto baseline = sched::AllOnScheduler::gpu_baseline(zoo);
    candidates.push_back({"GPU-only", baseline.schedule(camera_mix).mapping});
    sched::GreedyScheduler greedy(zoo, spec);
    candidates.push_back({"Greedy", greedy.schedule(camera_mix).mapping});
    core::OmniBoostScheduler omni(zoo, embedding, estimator);
    candidates.push_back({"OmniBoost", omni.schedule(camera_mix).mapping});
  }

  util::Table t({"scheduler", "T (inf/s)", "det p99 (s)", "reid p99 (s)",
                 "seg p99 (s)", "GPU util", "SLO"});
  const auto nets = camera_mix.resolve(zoo);

  const Candidate* best = nullptr;
  double best_t = 0.0;
  for (const Candidate& cand : candidates) {
    const auto run = board.simulate_traced(nets, cand.mapping);
    if (!run.report.feasible) {
      t.add_row({cand.name, "-", "-", "-", "-", "-", "infeasible"});
      continue;
    }
    const auto& lat = run.trace.per_dnn_latency;
    const double worst_p99 = std::max({lat[0].p99, lat[1].p99, lat[2].p99});
    const bool meets = worst_p99 <= kP99SloSeconds;
    t.add_row({cand.name, util::fmt(run.report.avg_throughput, 2),
               util::fmt(lat[0].p99, 2), util::fmt(lat[1].p99, 2),
               util::fmt(lat[2].p99, 2),
               util::fmt(100.0 * run.trace.components[0].utilization(), 1) + "%",
               meets ? "meets" : "violates"});
    if (meets && run.report.avg_throughput > best_t) {
      best = &cand;
      best_t = run.report.avg_throughput;
    }
  }
  t.print(std::cout);

  if (best != nullptr) {
    std::printf("\ndeploying '%s' (%.2f inf/s within the latency SLO):\n",
                best->name.c_str(), best_t);
    for (std::size_t d = 0; d < camera_mix.size(); ++d) {
      std::printf("  %-12s: ",
                  std::string(models::model_name(camera_mix.mix[d])).c_str());
      for (const auto& seg : sim::extract_segments(best->mapping.assignment(d)))
        std::printf("[L%zu-L%zu -> %s] ", seg.first + 1, seg.last + 1,
                    std::string(device::component_name(seg.comp)).c_str());
      std::printf("\n");
    }
  } else {
    std::printf("\nno candidate met the SLO — relax the latency budget or "
                "drop a stream\n");
  }
  return 0;
}
