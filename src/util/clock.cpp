#include "util/clock.hpp"

#include <cmath>

#include "util/require.hpp"

namespace omniboost::util {

PacedClock::PacedClock(double time_scale)
    : start_(std::chrono::steady_clock::now()), scale_(time_scale) {
  OB_REQUIRE(std::isfinite(time_scale) && time_scale > 0.0,
             "PacedClock: time_scale must be finite and > 0");
}

double PacedClock::now_s() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double>(elapsed).count() * scale_;
}

}  // namespace omniboost::util
