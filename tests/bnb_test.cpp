// Exactness and anytime-contract pins for the branch-and-bound reference
// scheduler: on every tractable workload BnB with an unlimited budget must
// reproduce ExhaustiveScheduler's optimum bit-for-bit, and under any budget
// it must return a valid incumbent inside a certified [lower, upper] bound
// interval that contains the true optimum.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "models/zoo.hpp"
#include "sched/bnb.hpp"
#include "sched/exhaustive.hpp"
#include "sched/greedy.hpp"
#include "sim/analytic.hpp"
#include "util/rng.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

std::shared_ptr<const sim::AnalyticModel> analytic() {
  static const auto model =
      std::make_shared<const sim::AnalyticModel>(device::make_hikey970());
  return model;
}

sched::WorkloadEvaluatorFactory analytic_factory() {
  return sched::analytic_evaluator_factory(zoo(), analytic());
}

double achieved(const Workload& w, const sim::Mapping& m) {
  return analytic()->evaluate(w.resolve(zoo()), m).avg_throughput;
}

/// Single-model workloads whose full mapping space fits the 3^8 tractability
/// budget the exactness pins are defined over.
std::vector<Workload> tractable_workloads() {
  std::vector<Workload> out;
  for (const ModelId id : models::kAllModels) {
    const std::size_t layers = zoo().network(id).num_layers();
    if (sched::count_assignments(layers, 3) <= 6561.0) out.push_back({{id}});
  }
  return out;
}

core::ScheduleResult exhaustive_opt(const Workload& w) {
  sched::ExhaustiveScheduler exact("exact", zoo(), analytic_factory(), {});
  return exact.schedule(w);
}

// --- Exactness pins --------------------------------------------------------

TEST(BnbExactness, MatchesExhaustiveOnEveryTractableWorkload) {
  for (const Workload& w : tractable_workloads()) {
    const auto exact = exhaustive_opt(w);
    sched::BranchAndBoundScheduler bnb("BnB", zoo(), device::make_hikey970());
    const auto r = bnb.schedule(w);
    EXPECT_DOUBLE_EQ(r.expected_reward, exact.expected_reward)
        << "mix=" << w.describe();
    ASSERT_TRUE(r.proved_optimal.has_value());
    EXPECT_TRUE(*r.proved_optimal) << "mix=" << w.describe();
    ASSERT_TRUE(r.lower_bound && r.upper_bound && r.nodes_expanded);
    EXPECT_DOUBLE_EQ(*r.lower_bound, r.expected_reward);
    EXPECT_DOUBLE_EQ(*r.upper_bound, r.expected_reward);
    EXPECT_GT(*r.nodes_expanded, 0u);
    EXPECT_TRUE(r.mapping.within_stage_limit(3));
    // The reported reward is the achieved analytic objective of the mapping.
    EXPECT_DOUBLE_EQ(r.expected_reward, achieved(w, r.mapping));
  }
}

TEST(BnbExactness, RawSpaceMatchesToo) {
  // Reduction off: same optimum from the unreduced space.
  for (const Workload& w : tractable_workloads()) {
    const auto exact = exhaustive_opt(w);
    sched::BnbConfig cfg;
    cfg.use_reduction = false;
    sched::BranchAndBoundScheduler bnb("BnB-raw", zoo(),
                                       device::make_hikey970(), cfg);
    const auto r = bnb.schedule(w);
    EXPECT_DOUBLE_EQ(r.expected_reward, exact.expected_reward)
        << "mix=" << w.describe();
    EXPECT_TRUE(*r.proved_optimal);
  }
}

TEST(BnbExactness, SeededWorkloadPicks) {
  // Three seeded draws over the tractable pool — the pinned "3 seeds" form.
  const auto pool = tractable_workloads();
  ASSERT_FALSE(pool.empty());
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    const Workload& w = pool[rng.below(pool.size())];
    const auto exact = exhaustive_opt(w);
    sched::BranchAndBoundScheduler bnb("BnB", zoo(), device::make_hikey970());
    const auto r = bnb.schedule(w);
    EXPECT_DOUBLE_EQ(r.expected_reward, exact.expected_reward)
        << "seed=" << seed << " mix=" << w.describe();
    EXPECT_TRUE(*r.proved_optimal);
  }
}

TEST(BnbExactness, OrderAgreementReturnsIdenticalMapping) {
  // Without incumbent seeding both searches keep the FIRST strict
  // improvement in the shared canonical order, so even the argmax mapping —
  // not just its value — must coincide (the order-agreement golden).
  const Workload w{{ModelId::kAlexNet}};
  const auto exact = exhaustive_opt(w);
  sched::BnbConfig cfg;
  cfg.seed_incumbent = false;
  cfg.use_reduction = false;
  sched::BranchAndBoundScheduler bnb("BnB", zoo(), device::make_hikey970(),
                                     cfg);
  const auto r = bnb.schedule(w);
  EXPECT_EQ(r.mapping, exact.mapping);
  EXPECT_DOUBLE_EQ(r.expected_reward, exact.expected_reward);
}

// --- Anytime contract ------------------------------------------------------

TEST(BnbAnytime, NodeBudgetReturnsCertifiedInterval) {
  const Workload w{{ModelId::kAlexNet}};
  const double opt = exhaustive_opt(w).expected_reward;
  for (const std::size_t max_nodes : {5u, 20u, 100u}) {
    sched::BnbConfig cfg;
    cfg.max_nodes = max_nodes;
    sched::BranchAndBoundScheduler bnb("BnB", zoo(), device::make_hikey970(),
                                       cfg);
    const auto r = bnb.schedule(w);
    ASSERT_TRUE(r.lower_bound && r.upper_bound && r.proved_optimal);
    EXPECT_LE(*r.lower_bound, opt) << "max_nodes=" << max_nodes;
    EXPECT_GE(*r.upper_bound, opt) << "max_nodes=" << max_nodes;
    EXPECT_LE(*r.lower_bound, *r.upper_bound);
    EXPECT_TRUE(r.mapping.within_stage_limit(3));
    EXPECT_DOUBLE_EQ(r.expected_reward, achieved(w, r.mapping));
    // After the budget trips, each level of the unwinding recursion still
    // bounds (folds) its remaining siblings, so allow that small overshoot.
    EXPECT_LE(*r.nodes_expanded, max_nodes + 3 * 11);
  }
}

TEST(BnbAnytime, FiftyMsBudgetNoWorseThanGreedyOnBenchMixes) {
  // The acceptance pin: on every bench-sized workload a 50 ms budget still
  // returns an incumbent at least as good as Greedy plus a valid bound.
  const std::vector<Workload> mixes = {
      {{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50}},
      {{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50,
        ModelId::kInceptionV3}},
      {{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50,
        ModelId::kInceptionV3, ModelId::kAlexNet}},
  };
  sched::GreedyScheduler greedy(zoo(), device::make_hikey970());
  for (const Workload& w : mixes) {
    const double greedy_value = achieved(w, greedy.schedule(w).mapping);
    sched::BnbConfig cfg;
    cfg.timeout_ms = 50.0;
    sched::BranchAndBoundScheduler bnb("BnB", zoo(), device::make_hikey970(),
                                       cfg);
    const auto r = bnb.schedule(w);
    // The incumbent is seeded with the greedy mapping scored by the same
    // objective, so this inequality is exact, not approximate.
    EXPECT_GE(r.expected_reward, greedy_value) << "mix=" << w.describe();
    ASSERT_TRUE(r.lower_bound && r.upper_bound);
    EXPECT_LE(*r.lower_bound, *r.upper_bound);
    EXPECT_GE(*r.upper_bound, r.expected_reward);
    EXPECT_TRUE(r.mapping.within_stage_limit(3));
    // Coarse wall-clock sanity: a 50 ms budget must not blow up into
    // seconds even under sanitizers.
    EXPECT_LT(r.decision_seconds, 5.0);
  }
}

TEST(BnbAnytime, UnlimitedBudgetOnTinySpaceProvesQuickly) {
  const Workload w{{ModelId::kAlexNet}};
  sched::BranchAndBoundScheduler bnb("BnB", zoo(), device::make_hikey970());
  const auto r = bnb.schedule(w);
  EXPECT_TRUE(*r.proved_optimal);
  // Bound pruning must beat plain enumeration of the 603-assignment space.
  EXPECT_LT(static_cast<double>(r.evaluations),
            sched::count_mappings(zoo(), w, 3));
}

}  // namespace
