#pragma once
/// \file thread_pool.hpp
/// A small fixed-size worker pool for the design-time pipeline (dataset
/// generation, trainer validation) and any other embarrassingly-index-
/// parallel loop.
///
/// Determinism contract: parallel_for(n, fn) runs fn(i, worker) exactly once
/// for every i in [0, n). Work is handed out dynamically (an atomic index
/// counter), so *which* worker runs an index — and in what order — varies
/// run to run; therefore fn must derive everything it needs from the index
/// (slot-seeded RNG via util::fork_stream, writes into slot i of a
/// pre-sized output), never from execution order or the worker id. The
/// worker id exists only to address per-worker scratch (e.g. a private
/// DesSimulator). Loops written this way produce byte-identical results for
/// every worker count, including 1.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omniboost::util {

class ThreadPool {
 public:
  /// Index-parallel task body: (item index, worker id in [0, size())).
  using IndexFn = std::function<void(std::size_t, std::size_t)>;

  /// \param workers  concurrent workers (>= 1). With workers == 1 no thread
  ///                 is spawned: parallel_for runs inline on the caller, in
  ///                 ascending index order — the exact sequential loop.
  explicit ThreadPool(std::size_t workers = 1);

  /// Workers actually worth spawning for an \p items-slot job:
  /// min(requested, items, hardware concurrency). For slot-indexed work the
  /// pool size is pure execution detail (results depend only on the index),
  /// so clamping never changes output — it only avoids paying for threads
  /// the host cannot run (or slots that do not exist).
  static std::size_t clamped(std::size_t requested, std::size_t items);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Must not be called while a parallel_for is running.
  ~ThreadPool();

  /// Number of workers (1 when running inline).
  std::size_t size() const { return threads_.empty() ? 1 : threads_.size(); }

  /// Runs fn(i, worker) once for every i in [0, n); blocks until all indices
  /// finished. The first exception thrown by fn is rethrown here (remaining
  /// indices are abandoned once a failure is recorded). Not reentrant: one
  /// parallel_for at a time per pool.
  void parallel_for(std::size_t n, const IndexFn& fn);

  /// Hands one fire-and-forget task to a pool worker and returns
  /// immediately — the serving daemon's idle-time background-search hook.
  /// At most one async task may be in flight (std::invalid_argument
  /// otherwise); its exception, if any, is stowed and rethrown by
  /// async_join(). In inline mode (workers == 1, no threads) the task runs
  /// synchronously on the caller before async() returns — same contract,
  /// zero concurrency. An async task in flight shares workers with
  /// parallel_for: a concurrent loop simply runs one worker short until the
  /// task finishes.
  void async(std::function<void()> fn);

  /// True while an async task is submitted but not yet finished. Always
  /// false in inline mode (the task completed inside async()).
  bool async_active();

  /// Blocks until the in-flight async task (if any) finishes, then rethrows
  /// its exception if it threw. Call before destroying the pool if the
  /// task's outcome matters — destruction abandons a not-yet-claimed task.
  void async_join();

 private:
  void worker_loop(std::size_t worker_id);

  std::vector<std::thread> threads_;

  // Job state, guarded by mutex_ (next_ races ahead via fetch_add semantics
  // implemented under the lock for simplicity — the per-index work in this
  // codebase dwarfs a mutex acquisition).
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const IndexFn* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t next_ = 0;
  std::size_t active_ = 0;  ///< workers still inside the current job
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;

  // Single-slot async task state, guarded by mutex_ like the job state.
  std::condition_variable async_done_;
  std::function<void()> async_fn_;
  bool async_pending_ = false;   ///< submitted, no worker has claimed it yet
  bool async_inflight_ = false;  ///< submitted and not yet finished
  std::exception_ptr async_error_;
};

}  // namespace omniboost::util
