/// \file omniboost_cli.cpp
/// End-to-end command-line front end for the framework: profiles the
/// (simulated) board, trains or loads the throughput estimator, schedules a
/// user-specified multi-DNN mix with a chosen scheduler, and reports the
/// mapping plus the board-measured throughput — in text or JSON.
///
/// Examples:
///   omniboost_cli --mix VGG-19,AlexNet,MobileNet
///   omniboost_cli --mix vgg16,resnet50,alexnet,mobilenet --scheduler ga
///   omniboost_cli --mix alexnet --save-estimator est.bin
///   omniboost_cli --mix alexnet --estimator-file est.bin --json

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "device/profile.hpp"
#include "core/omniboost.hpp"
#include "nn/kernel.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/ga.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sched/mosaic.hpp"
#include "sched/search_common.hpp"
#include "sim/des.hpp"
#include "sim/gantt.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

namespace {

using namespace omniboost;

workload::Workload parse_mix(const std::string& csv) {
  workload::Workload w;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    models::ModelId id;
    if (!models::parse_model_name(token, id)) {
      std::string known;
      for (const auto m : models::kAllModels) {
        if (!known.empty()) known += ", ";
        known += std::string(models::model_name(m));
      }
      throw std::invalid_argument("unknown model '" + token +
                                  "'; known models: " + known);
    }
    w.mix.push_back(id);
  }
  if (w.mix.empty()) throw std::invalid_argument("--mix is empty");
  return w;
}

std::unique_ptr<core::IScheduler> make_scheduler(
    const std::string& kind, const models::ModelZoo& zoo,
    const device::DeviceSpec& device, const core::EmbeddingTensor& embedding,
    std::shared_ptr<const core::ThroughputEstimator> estimator,
    std::size_t budget, std::size_t depth, std::size_t batch,
    std::uint64_t seed) {
  if (kind == "omniboost") {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = budget;
    cfg.mcts.max_depth = depth;
    cfg.mcts.seed = seed;
    cfg.batch_size = batch;
    return std::make_unique<core::OmniBoostScheduler>(zoo, embedding,
                                                      std::move(estimator),
                                                      cfg);
  }
  if (kind == "baseline") {
    return std::make_unique<sched::AllOnScheduler>(
        zoo, device::ComponentId::kGpu, "Baseline");
  }
  if (kind == "mosaic") {
    return std::make_unique<sched::MosaicScheduler>(zoo, device);
  }
  if (kind == "ga") {
    sched::GaConfig cfg;
    cfg.seed = seed;
    return std::make_unique<sched::GaScheduler>(zoo, device, cfg);
  }
  if (kind == "greedy") {
    return std::make_unique<sched::GreedyScheduler>(zoo, device);
  }
  if (kind == "random") {
    sched::LocalSearchConfig cfg;
    cfg.budget = budget;
    cfg.seed = seed;
    return std::make_unique<sched::RandomSearchScheduler>(
        "RandomSearch", zoo,
        sched::estimator_evaluator_factory(zoo, embedding,
                                           std::move(estimator)),
        cfg);
  }
  if (kind == "annealing") {
    sched::AnnealingConfig cfg;
    cfg.budget = budget;
    cfg.seed = seed;
    return std::make_unique<sched::SimulatedAnnealingScheduler>(
        "Annealing", zoo,
        sched::estimator_evaluator_factory(zoo, embedding,
                                           std::move(estimator)),
        cfg);
  }
  throw std::invalid_argument(
      "unknown scheduler '" + kind +
      "' (omniboost|baseline|mosaic|ga|greedy|random|annealing)");
}

int run(int argc, char** argv) {
  util::ArgParser args(
      "omniboost_cli",
      "schedule a multi-DNN mix on the simulated HiKey970 and report "
      "throughput");
  args.option("mix", "comma-separated DNN list, e.g. VGG-19,AlexNet,MobileNet")
      .option("scheduler",
              "omniboost|baseline|mosaic|ga|greedy|random|annealing",
              "omniboost")
      .option("budget", "search budget (estimator queries)", "500")
      .option("depth", "MCTS tree-expansion depth limit", "100")
      .option("batch", "leaf evaluations per batched estimator query", "1")
      .option("samples", "estimator training workloads", "500")
      .option("epochs", "estimator training epochs", "100")
      .option("kernel",
              "compute kernel for the estimator CNN: gemm (fast) or "
              "reference (the paper's bit-frozen loops)",
              "gemm")
      .option("design-workers",
              "design-time parallelism (dataset generation + validation); "
              "0 = the paper's exact sequential pipeline, N >= 1 = the "
              "slot-seeded parallel pipeline (byte-identical for any N)",
              "0")
      .option("seed", "master seed", "1")
      .option("estimator-file", "load a trained estimator instead of training")
      .option("save-estimator", "write the trained estimator to this path")
      .option("device-file", "board profile (INI) instead of the built-in HiKey970")
      .option("save-device-profile", "write the active board profile and exit")
      .flag("json", "emit a machine-readable JSON report")
      .flag("trace", "include per-component utilization in the report")
      .flag("gantt", "render an ASCII execution timeline (text mode only)");
  if (!args.parse(argc, argv)) return 0;

  const workload::Workload w = parse_mix(args.get("mix"));
  const std::string scheduler_kind = args.get("scheduler");
  // Applied before any network is built: layers capture the default at
  // construction, so this one call covers training, loading, and search.
  nn::set_default_kernel(nn::parse_kernel_name(args.get("kernel")));
  const long long design_workers_raw = args.get_int("design-workers");
  if (design_workers_raw < 0) {
    throw std::invalid_argument(
        "--design-workers must be >= 0 (0 = sequential paper pipeline)");
  }
  const auto design_workers = static_cast<std::size_t>(design_workers_raw);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool as_json = args.get_flag("json");
  const bool with_trace = args.get_flag("trace");
  const bool with_gantt = args.get_flag("gantt");

  // --- Substrate: board model, zoo, kernel profiling (embedding tensor).
  const device::DeviceSpec device =
      args.has("device-file")
          ? device::load_profile_file(args.get("device-file"))
          : device::make_hikey970();
  if (args.has("save-device-profile")) {
    const std::string path = args.get("save-device-profile");
    device::save_profile_file(device, path);
    std::printf("wrote device profile for '%s' to %s\n", device.name.c_str(),
                path.c_str());
    return 0;
  }
  const models::ModelZoo zoo;
  const device::CostModel cost(device);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(device);

  // --- Design time: train or load the estimator (model-driven schedulers).
  std::shared_ptr<const core::ThroughputEstimator> estimator;
  const bool needs_estimator = scheduler_kind == "omniboost" ||
                               scheduler_kind == "random" ||
                               scheduler_kind == "annealing";
  if (needs_estimator) {
    if (args.has("estimator-file")) {
      const std::string est_path = args.get("estimator-file");
      estimator = std::make_shared<const core::ThroughputEstimator>(
          core::ThroughputEstimator::load_file(est_path));
      if (!as_json)
        std::printf("loaded estimator from %s\n", est_path.c_str());
    } else {
      if (!as_json)
        std::printf("training estimator (%lld workloads, %lld epochs)...\n",
                    static_cast<long long>(args.get_int("samples")),
                    static_cast<long long>(args.get_int("epochs")));
      core::DatasetConfig dc;
      dc.samples = static_cast<std::size_t>(args.get_int("samples"));
      dc.seed = seed + 41;
      dc.workers = design_workers;
      const core::SampleSet data =
          core::generate_dataset(zoo, embedding, board, dc);
      auto est = std::make_shared<core::ThroughputEstimator>(
          embedding.models_dim(), embedding.layers_dim());
      nn::L1Loss l1;
      nn::TrainConfig tc;
      tc.epochs = static_cast<std::size_t>(args.get_int("epochs"));
      tc.workers = std::max<std::size_t>(design_workers, 1);
      const auto history = est->fit(data, dc.samples / 5, l1, tc);
      if (!as_json)
        std::printf("final train loss %.4f, val loss %.4f\n",
                    history.train_loss.back(), history.val_loss.back());
      if (args.has("save-estimator")) {
        const std::string save_path = args.get("save-estimator");
        est->save_file(save_path);
        if (!as_json)
          std::printf("saved estimator to %s\n", save_path.c_str());
      }
      estimator = est;
    }
  }

  // --- Run time: one scheduling decision plus a board measurement.
  auto scheduler = make_scheduler(
      scheduler_kind, zoo, device, embedding, estimator,
      static_cast<std::size_t>(args.get_int("budget")),
      static_cast<std::size_t>(args.get_int("depth")),
      static_cast<std::size_t>(args.get_int("batch")), seed);
  const core::ScheduleResult result = scheduler->schedule(w);

  const auto nets = w.resolve(zoo);
  const auto traced = board.simulate_traced(nets, result.mapping, with_gantt);
  const sim::ThroughputReport& measured = traced.report;

  // Baseline comparison: everything on the GPU.
  const sim::Mapping all_gpu = sim::Mapping::all_on(
      w.layer_counts(zoo), device::ComponentId::kGpu);
  const double baseline_t = board.simulate(nets, all_gpu).avg_throughput;

  if (as_json) {
    util::Json out = util::Json::object();
    out.set("mix", util::Json::string(w.describe()));
    out.set("scheduler", util::Json::string(scheduler->name()));
    out.set("feasible", util::Json::boolean(measured.feasible));
    out.set("avg_throughput_inf_s", util::Json::number(measured.avg_throughput));
    out.set("baseline_gpu_inf_s", util::Json::number(baseline_t));
    out.set("speedup_vs_baseline",
            util::Json::number(baseline_t > 0.0
                                   ? measured.avg_throughput / baseline_t
                                   : 0.0));
    out.set("decision_seconds", util::Json::number(result.decision_seconds));
    out.set("evaluations", util::Json::number(result.evaluations));
    out.set("cache_hits", util::Json::number(result.cache_hits));
    util::Json dnns = util::Json::array();
    for (std::size_t d = 0; d < w.size(); ++d) {
      util::Json j = util::Json::object();
      j.set("model", util::Json::string(std::string(
                         models::model_name(w.mix[d]))));
      j.set("rate_inf_s", util::Json::number(measured.per_dnn_rate[d]));
      util::Json segs = util::Json::array();
      for (const auto& seg : sim::extract_segments(result.mapping.assignment(d))) {
        util::Json sj = util::Json::object();
        sj.set("layers", util::Json::string(std::to_string(seg.first) + "-" +
                                            std::to_string(seg.last)));
        sj.set("component", util::Json::string(std::string(
                                device::component_name(seg.comp))));
        segs.push_back(std::move(sj));
      }
      j.set("pipeline", std::move(segs));
      dnns.push_back(std::move(j));
    }
    out.set("dnns", std::move(dnns));
    if (with_trace) {
      util::Json comps = util::Json::array();
      for (const auto c : device::kAllComponents) {
        const auto& cu = traced.trace.components[device::component_index(c)];
        util::Json cj = util::Json::object();
        cj.set("component", util::Json::string(std::string(
                                device::component_name(c))));
        cj.set("utilization", util::Json::number(cu.utilization()));
        cj.set("max_queue_depth", util::Json::number(cu.max_queue_depth));
        comps.push_back(std::move(cj));
      }
      out.set("utilization", std::move(comps));
    }
    std::printf("%s\n", out.dump(2).c_str());
    return 0;
  }

  std::printf("\nmix: %s | scheduler: %s\n", w.describe().c_str(),
              scheduler->name().c_str());
  std::printf("decision: %.3f s (%zu evaluator queries, %zu memo hits)\n",
              result.decision_seconds, result.evaluations, result.cache_hits);
  if (!measured.feasible) {
    std::printf("RESULT: workload exceeds board memory (unresponsive)\n");
    return 1;
  }

  util::Table table({"DNN", "pipeline (layers -> component)", "inf/s"});
  for (std::size_t d = 0; d < w.size(); ++d) {
    std::string pipeline;
    for (const auto& seg : sim::extract_segments(result.mapping.assignment(d))) {
      if (!pipeline.empty()) pipeline += " | ";
      pipeline += std::to_string(seg.first) + "-" + std::to_string(seg.last) +
                  " -> " + std::string(device::component_name(seg.comp));
    }
    table.add_row({std::string(models::model_name(w.mix[d])), pipeline,
                   util::fmt(measured.per_dnn_rate[d], 2)});
  }
  table.print(std::cout);

  std::printf("\naverage throughput T: %.3f inf/s (baseline all-on-GPU: %.3f, "
              "speedup x%.2f)\n",
              measured.avg_throughput, baseline_t,
              baseline_t > 0.0 ? measured.avg_throughput / baseline_t : 0.0);
  if (with_trace) {
    util::Table ut({"component", "utilization", "max queue"});
    for (const auto c : device::kAllComponents) {
      const auto& cu = traced.trace.components[device::component_index(c)];
      ut.add_row({std::string(device::component_name(c)),
                  util::fmt(100.0 * cu.utilization(), 1) + "%",
                  std::to_string(cu.max_queue_depth)});
    }
    ut.print(std::cout);
  }
  if (with_gantt) {
    std::printf("\nexecution timeline (one glyph per stream, '.' = idle):\n%s",
                sim::render_gantt(traced.trace).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n(use --help for usage)\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
