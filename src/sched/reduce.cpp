#include "sched/reduce.hpp"

#include "sched/greedy.hpp"
#include "sim/analytic.hpp"
#include "util/require.hpp"

namespace omniboost::sched {

namespace {

/// Byte-for-byte performance equality of two components (name excluded:
/// symmetry is about behaviour, not labels).
bool same_performance(const device::ComponentSpec& a,
                      const device::ComponentSpec& b) {
  return a.peak_gflops == b.peak_gflops && a.mem_bw_gbps == b.mem_bw_gbps &&
         a.kernel_overhead_s == b.kernel_overhead_s &&
         a.efficiency.gemm == b.efficiency.gemm &&
         a.efficiency.direct_conv == b.efficiency.direct_conv &&
         a.efficiency.depthwise == b.efficiency.depthwise &&
         a.efficiency.elementwise == b.efficiency.elementwise &&
         a.working_set_budget_bytes == b.working_set_budget_bytes &&
         a.contention_exponent == b.contention_exponent;
}

}  // namespace

bool ReducedSpace::allows(std::size_t dnn, std::size_t layer,
                          device::ComponentId comp) const {
  for (const device::ComponentId c : allowed[dnn][layer])
    if (c == comp) return true;
  return false;
}

bool ReducedSpace::has_symmetry() const {
  for (std::size_t c = 0; c < device::kNumComponents; ++c)
    if (symmetry_class[c] != c) return true;
  return false;
}

std::vector<std::uint8_t> ReducedSpace::action_mask() const {
  std::vector<std::uint8_t> mask;
  for (const LayerChoices& dnn : allowed) {
    for (const std::vector<device::ComponentId>& layer : dnn) {
      std::uint8_t bits = 0;
      for (const device::ComponentId c : layer)
        bits = static_cast<std::uint8_t>(
            bits | (1u << device::component_index(c)));
      mask.push_back(bits);
    }
  }
  return mask;
}

ReducedSpace reduce_search_space(const models::ModelZoo& zoo,
                                 const workload::Workload& w,
                                 const device::DeviceSpec& device,
                                 ReduceConfig config) {
  OB_REQUIRE(w.size() > 0, "reduce_search_space: empty workload");
  OB_REQUIRE(config.stage_limit >= 1, "reduce_search_space: bad stage limit");

  const sim::NetworkList nets = w.resolve(zoo);
  const sim::AnalyticModel model(device);

  ReducedSpace space;

  // Incumbent: the greedy mapping scored by the same analytic objective the
  // probes bound. Anything a probe certifies as strictly worse than an
  // already-achieved objective cannot be optimal.
  GreedyScheduler greedy(zoo, device, GreedyConfig{config.stage_limit});
  const core::ScheduleResult seed = greedy.schedule(w);
  space.incumbent_objective =
      model.evaluate(nets, seed.mapping).avg_throughput;

  const sim::RelaxedBound bound(nets, model.cost_model());

  std::vector<sim::PartialAssignment> probe;
  probe.reserve(nets.size());
  for (const auto* net : nets)
    probe.emplace_back(net->num_layers(), sim::kLayerUnassigned);

  space.allowed.resize(nets.size());
  for (std::size_t d = 0; d < nets.size(); ++d) {
    space.allowed[d].resize(nets[d]->num_layers());
    for (std::size_t l = 0; l < nets[d]->num_layers(); ++l) {
      for (const device::ComponentId comp : device::kAllComponents) {
        ++space.total_choices;
        bool keep = true;
        if (config.dominance) {
          probe[d][l] =
              static_cast<std::int8_t>(device::component_index(comp));
          // Strict comparison: an equal-valued optimum may still pass
          // through this choice, so only a certified deficit prunes.
          keep = bound.upper_bound(probe) >= space.incumbent_objective;
          probe[d][l] = sim::kLayerUnassigned;
        }
        if (keep) {
          space.allowed[d][l].push_back(comp);
        } else {
          ++space.pruned_choices;
        }
      }
      // The greedy mapping itself survives every probe (its achieved value
      // is never above an admissible bound through its own choices), so a
      // layer can never lose all choices.
      OB_ENSURE(!space.allowed[d][l].empty(),
                "reduce_search_space: layer lost every component");
    }
  }

  if (config.symmetry) {
    for (std::size_t c = 0; c < device::kNumComponents; ++c) {
      for (std::size_t rep = 0; rep < c; ++rep) {
        if (same_performance(device.components[rep], device.components[c])) {
          space.symmetry_class[c] = space.symmetry_class[rep];
          break;
        }
      }
    }
  }

  return space;
}

}  // namespace omniboost::sched
