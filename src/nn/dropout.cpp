#include "nn/dropout.hpp"

#include "util/require.hpp"

namespace omniboost::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  OB_REQUIRE(p >= 0.0f && p < 1.0f, "Dropout: p must be in [0, 1)");
}

void Dropout::init(util::Rng& rng) {
  // Fork a deterministic mask stream so weight init draws stay aligned with
  // and without dropout layers in the graph.
  rng_ = rng.fork();
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training() || p_ == 0.0f) {
    mask_ = Tensor();
    return x;
  }
  const float keep_scale = 1.0f / (1.0f - p_);
  mask_ = Tensor(x.shape());
  Tensor out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float m = rng_.chance(static_cast<double>(p_)) ? 0.0f : keep_scale;
    mask_[i] = m;
    out[i] *= m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;  // inference / p == 0 pass-through
  OB_REQUIRE(grad_out.shape() == mask_.shape(),
             "Dropout::backward: gradient shape mismatch");
  Tensor grad = grad_out;
  grad *= mask_;
  return grad;
}

}  // namespace omniboost::nn
