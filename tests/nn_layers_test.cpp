// Forward-pass semantics of every layer: shapes, hand-computed values,
// train/eval behaviour, parameter counts.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace {

using namespace omniboost::nn;
using omniboost::tensor::Tensor;
using omniboost::util::Rng;

TEST(Conv2d, OutputShape) {
  Conv2d conv(3, 8, 3, 1, 1);
  const Tensor y = conv.forward(Tensor({2, 3, 11, 37}));
  EXPECT_EQ(y.shape(), (omniboost::tensor::Shape{2, 8, 11, 37}));
}

TEST(Conv2d, StrideAndPaddingArithmetic) {
  Conv2d conv(1, 1, 3, 2, 0);
  const Tensor y = conv.forward(Tensor({1, 1, 7, 9}));
  EXPECT_EQ(y.extent(2), 3u);
  EXPECT_EQ(y.extent(3), 4u);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Conv2d conv(1, 1, 3, 1, 1);
  // Center tap = 1, everything else 0, bias 0.
  for (Param* p : conv.params()) p->value.zero();
  conv.params()[0]->value.at({0, 0, 1, 1}) = 1.0f;
  Tensor x({1, 1, 4, 5});
  Rng rng(1);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, SummingKernelComputesLocalSum) {
  Conv2d conv(1, 1, 3, 1, 0);
  conv.params()[0]->value.fill(1.0f);
  conv.params()[1]->value.zero();
  Tensor x({1, 1, 3, 3}, 1.0f);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
}

TEST(Conv2d, BiasIsAdded) {
  Conv2d conv(1, 2, 1, 1, 0);
  conv.params()[0]->value.zero();
  conv.params()[1]->value[0] = 1.5f;
  conv.params()[1]->value[1] = -2.0f;
  const Tensor y = conv.forward(Tensor({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.5f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 1, 1}), -2.0f);
}

TEST(Conv2d, ParamCount) {
  Conv2d conv(3, 8, 3, 1, 1);
  EXPECT_EQ(conv.num_params(), 3u * 8 * 9 + 8);
  Conv2d no_bias(3, 8, 3, 1, 1, false);
  EXPECT_EQ(no_bias.num_params(), 3u * 8 * 9);
}

TEST(Conv2d, KaimingInitStatistics) {
  Conv2d conv(16, 16, 3, 1, 1);
  Rng rng(7);
  conv.init(rng);
  const Tensor& w = conv.params()[0]->value;
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    sq += static_cast<double>(w[i]) * w[i];
  }
  const double mean = sum / static_cast<double>(w.size());
  const double var = sq / static_cast<double>(w.size()) - mean * mean;
  const double expected_var = 2.0 / (16.0 * 9.0);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, expected_var, expected_var * 0.35);
}

TEST(Conv2d, RejectsWrongInput) {
  Conv2d conv(3, 4, 3, 1, 1);
  EXPECT_THROW(conv.forward(Tensor({3, 8, 8})), std::invalid_argument);
  EXPECT_THROW(conv.forward(Tensor({1, 4, 8, 8})), std::invalid_argument);
  EXPECT_THROW(conv.backward(Tensor({1, 4, 8, 8})), std::invalid_argument);
}

TEST(Linear, MatrixMultiplySemantics) {
  Linear fc(3, 2);
  // W = [[1,2,3],[0,-1,1]], b = [0.5, -0.5]
  Tensor& w = fc.params()[0]->value;
  w = Tensor::from_data({2, 3}, {1, 2, 3, 0, -1, 1});
  fc.params()[1]->value = Tensor::from_vector({0.5f, -0.5f});
  const Tensor y =
      fc.forward(Tensor::from_data({1, 3}, {1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at({0, 0}), 6.5f);
  EXPECT_FLOAT_EQ(y.at({0, 1}), -0.5f);
}

TEST(Linear, ParamCount) {
  Linear fc(24, 3);
  EXPECT_EQ(fc.num_params(), 24u * 3 + 3);
}

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  bn.set_training(true);
  Rng rng(3);
  Tensor x({4, 2, 5, 5});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng.normal(5.0, 3.0));
  const Tensor y = bn.forward(x);
  // Per-channel mean ~0, var ~1.
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    std::size_t count = 0;
    for (std::size_t b = 0; b < 4; ++b)
      for (std::size_t h = 0; h < 5; ++h)
        for (std::size_t w = 0; w < 5; ++w) {
          const double v = y.at({b, c, h, w});
          sum += v;
          sq += v * v;
          ++count;
        }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.set_training(true);
  // Feed a constant-distribution batch many times so running stats converge.
  Rng rng(4);
  Tensor x({8, 1, 4, 4});
  for (int it = 0; it < 60; ++it) {
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = static_cast<float>(rng.normal(2.0, 0.5));
    bn.forward(x);
  }
  bn.set_training(false);
  Tensor probe({1, 1, 1, 1});
  probe[0] = 2.0f;  // at the running mean -> output ~beta = 0
  const Tensor y = bn.forward(probe);
  EXPECT_NEAR(y[0], 0.0f, 0.15f);
}

TEST(BatchNorm2d, GammaBetaAffectOutput) {
  BatchNorm2d bn(1);
  bn.params()[0]->value[0] = 2.0f;  // gamma
  bn.params()[1]->value[0] = 1.0f;  // beta
  Tensor x({2, 1, 2, 2});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = bn.forward(x);
  // Normalized values scaled by 2 and shifted by 1: mean of outputs == beta.
  double mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) mean += y[i];
  EXPECT_NEAR(mean / static_cast<double>(y.size()), 1.0, 1e-5);
}

TEST(BatchNorm2d, ParamCountIsTwoPerChannel) {
  BatchNorm2d bn(24);
  EXPECT_EQ(bn.num_params(), 48u);
}

TEST(GELU, ReferenceValues) {
  // Reference values of the tanh approximation.
  EXPECT_NEAR(GELU::value(0.0f), 0.0f, 1e-7f);
  EXPECT_NEAR(GELU::value(1.0f), 0.8412f, 1e-3f);
  EXPECT_NEAR(GELU::value(-1.0f), -0.1588f, 1e-3f);
  EXPECT_NEAR(GELU::value(3.0f), 2.9964f, 1e-3f);
}

TEST(GELU, DerivativeMatchesFiniteDifference) {
  for (float x : {-2.0f, -0.5f, 0.0f, 0.7f, 2.5f}) {
    const float eps = 1e-3f;
    const float numeric = (GELU::value(x + eps) - GELU::value(x - eps)) /
                          (2.0f * eps);
    EXPECT_NEAR(GELU::derivative(x), numeric, 1e-3f);
  }
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  const Tensor y = relu.forward(Tensor::from_vector({-1.0f, 0.0f, 2.0f}));
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
}

TEST(MaxPool2d, SelectsWindowMaximum) {
  MaxPool2d pool(2);
  const Tensor x = Tensor::from_data({1, 1, 2, 4}, {1, 5, 2, 0,  //
                                                    3, 4, 8, 7});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (omniboost::tensor::Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(MaxPool2d, FloorSemanticsDropTrailing) {
  MaxPool2d pool(2);
  const Tensor y = pool.forward(Tensor({1, 1, 5, 7}));
  EXPECT_EQ(y.extent(2), 2u);
  EXPECT_EQ(y.extent(3), 3u);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  const Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 9, 3, 2});
  pool.forward(x);
  Tensor g({1, 1, 1, 1});
  g[0] = 5.0f;
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 5.0f);  // position of the 9
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(GlobalAvgPool, AveragesPlane) {
  GlobalAvgPool gap;
  const Tensor x = Tensor::from_data({1, 2, 1, 2}, {2, 4, 10, 30});
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), (omniboost::tensor::Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 20.0f);
}

TEST(Flatten, CollapsesTrailingDims) {
  Flatten flat;
  const Tensor y = flat.forward(Tensor({2, 3, 4, 5}));
  EXPECT_EQ(y.shape(), (omniboost::tensor::Shape{2, 60}));
  const Tensor g = flat.backward(Tensor({2, 60}));
  EXPECT_EQ(g.shape(), (omniboost::tensor::Shape{2, 3, 4, 5}));
}

TEST(Sequential, ComposesAndCollectsParams) {
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1);
  seq.emplace<GELU>();
  seq.emplace<GlobalAvgPool>();
  seq.emplace<Linear>(2, 3);
  const Tensor y = seq.forward(Tensor({2, 1, 6, 6}));
  EXPECT_EQ(y.shape(), (omniboost::tensor::Shape{2, 3}));
  EXPECT_EQ(seq.num_params(), (1u * 2 * 9 + 2) + (2u * 3 + 3));
  EXPECT_EQ(seq.size(), 4u);
}

TEST(Residual, AddsIdentitySkip) {
  auto body = std::make_unique<Sequential>();
  body->emplace<GELU>();
  Residual res(std::move(body));
  const Tensor x = Tensor::from_vector({1.0f, -1.0f});
  const Tensor y = res.forward(x);
  EXPECT_NEAR(y[0], 1.0f + GELU::value(1.0f), 1e-6f);
  EXPECT_NEAR(y[1], -1.0f + GELU::value(-1.0f), 1e-6f);
}

TEST(Residual, RejectsShapeChangingBody) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Linear>(4, 2);
  Residual res(std::move(body));
  EXPECT_THROW(res.forward(Tensor({1, 4})), std::invalid_argument);
}

TEST(Module, BatchedForwardMatchesPerSampleForward) {
  // The leading dimension is a true batch axis: in inference mode every
  // layer computes samples independently, so forwarding a stacked batch is
  // bit-identical to forwarding each sample alone. predict_batch and the
  // MCTS expansion waves rely on this contract (docs/ESTIMATOR.md).
  Rng rng(31);
  const auto random_input = [&rng](omniboost::tensor::Shape shape) {
    Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.size(); ++i)
      t[i] = static_cast<float>(rng.normal());
    return t;
  };

  const auto check = [&](Module& layer, const omniboost::tensor::Shape& s) {
    layer.set_training(false);
    constexpr std::size_t kBatch = 5;
    std::vector<Tensor> samples;
    for (std::size_t b = 0; b < kBatch; ++b) samples.push_back(random_input(s));
    const Tensor batched = layer.forward(omniboost::tensor::stack(samples));
    for (std::size_t b = 0; b < kBatch; ++b) {
      const Tensor single =
          layer.forward(omniboost::tensor::stack({samples[b]}));
      ASSERT_EQ(single.size() * kBatch, batched.size()) << layer.name();
      for (std::size_t i = 0; i < single.size(); ++i)
        EXPECT_EQ(single[i], batched[b * single.size() + i])
            << layer.name() << " sample " << b << " element " << i;
    }
  };

  Conv2d conv(3, 4, 3, 1, 1);
  conv.init(rng);
  check(conv, {3, 6, 7});

  Linear fc(10, 4);
  fc.init(rng);
  check(fc, {10});

  BatchNorm2d bn(3);
  {  // give the running statistics a real history first
    bn.set_training(true);
    bn.forward(random_input({4, 3, 5, 5}));
  }
  check(bn, {3, 5, 5});

  GELU gelu;
  check(gelu, {3, 4, 4});
  ReLU relu;
  check(relu, {3, 4, 4});
  MaxPool2d pool(2);
  check(pool, {3, 6, 6});
  GlobalAvgPool gap;
  check(gap, {3, 4, 4});
}

TEST(Module, ZeroGradClearsAccumulation) {
  Linear fc(2, 2);
  Rng rng(5);
  fc.init(rng);
  fc.forward(Tensor({1, 2}, 1.0f));
  fc.backward(Tensor({1, 2}, 1.0f));
  bool any_nonzero = false;
  for (Param* p : fc.params())
    for (std::size_t i = 0; i < p->grad.size(); ++i)
      any_nonzero |= p->grad[i] != 0.0f;
  EXPECT_TRUE(any_nonzero);
  fc.zero_grad();
  for (Param* p : fc.params())
    for (std::size_t i = 0; i < p->grad.size(); ++i)
      EXPECT_EQ(p->grad[i], 0.0f);
}

}  // namespace
