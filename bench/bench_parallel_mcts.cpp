/// \file bench_parallel_mcts.cpp
/// Extension E1: root-parallel MCTS. The paper reports ~30 s decisions from
/// 500 sequential estimator queries (§V-B) and notes the budget is the
/// latency/quality dial; root parallelization is the orthogonal dial — split
/// the same budget over N independent trees (private estimator clones) and
/// the wall-clock drops by ~N while the merged decision quality holds.

#include <thread>

#include "bench_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 47;
  bench::banner("Extension E1 — root-parallel MCTS",
                "Section V-B (decision latency) + DESIGN.md extensions",
                kSeed);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("host parallelism: %u hardware thread(s)\n", cores);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  util::Rng rng(kSeed);
  std::vector<workload::Workload> mixes;
  for (int i = 0; i < 3; ++i) mixes.push_back(workload::random_mix(rng, 4));

  util::Table t({"workers", "avg decision (ms)", "avg normalized T",
                 "queries"});
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = 500;
    cfg.mcts.seed = kSeed;
    cfg.workers = workers;
    core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator(),
                                  cfg);
    double latency = 0.0, quality = 0.0;
    std::size_t queries = 0;
    for (const auto& w : mixes) {
      const auto r = omni.schedule(w);
      latency += r.decision_seconds;
      queries = r.evaluations;
      const double tb = ctx.measure(
          w, sim::Mapping::all_on(w.layer_counts(ctx.zoo()),
                                  device::ComponentId::kGpu));
      quality += ctx.measure(w, r.mapping) / tb;
    }
    t.add_row({std::to_string(workers),
               util::fmt(1e3 * latency / static_cast<double>(mixes.size()), 1),
               util::fmt(quality / static_cast<double>(mixes.size()), 2),
               std::to_string(queries)});
  }
  bench::report("parallel_mcts", t);

  if (cores > 1) {
    std::printf("\npaper check: latency shrinks roughly with the worker "
                "count (up to %u cores) at a fixed 500-query budget while "
                "normalized throughput stays in the same band\n", cores);
  } else {
    std::printf("\npaper check: this host exposes a single hardware thread, "
                "so workers time-share and latency stays flat; the run still "
                "verifies determinism and that quality holds under the "
                "budget split — on a multi-core deployment the same split "
                "divides the ~30 s decision latency by the worker count\n");
  }
  return 0;
}
