#include "nn/module.hpp"

#include "util/require.hpp"

namespace omniboost::nn {

void Module::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

std::size_t Module::num_params() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

Sequential& Sequential::add(std::unique_ptr<Module> m) {
  OB_REQUIRE(m != nullptr, "Sequential::add: null module");
  layers_.push_back(std::move(m));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor y = x;
  for (auto& l : layers_) y = l->forward(y);
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* b : l->buffers()) out.push_back(b);
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& l : layers_) l->set_training(training);
}

void Sequential::set_kernel(KernelKind kind) {
  for (auto& l : layers_) l->set_kernel(kind);
}

void Sequential::init(util::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Module& Sequential::layer(std::size_t i) {
  OB_REQUIRE(i < layers_.size(), "Sequential::layer: index out of range");
  return *layers_[i];
}

Residual::Residual(std::unique_ptr<Module> body) : body_(std::move(body)) {
  OB_REQUIRE(body_ != nullptr, "Residual: null body");
}

Tensor Residual::forward(const Tensor& x) {
  Tensor y = body_->forward(x);
  OB_REQUIRE(y.shape() == x.shape(),
             "Residual: body must preserve tensor shape");
  y += x;
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = body_->backward(grad_out);
  g += grad_out;
  return g;
}

void Residual::set_training(bool training) {
  Module::set_training(training);
  body_->set_training(training);
}

}  // namespace omniboost::nn
