#pragma once
/// \file ga.hpp
/// Reimplementation of the genetic-algorithm comparison point (Kang et al.,
/// IEEE Access 2020, as characterized in the paper): evolution over
/// layer-to-component chromosomes whose fitness is an on-board measurement of
/// the whole mix, re-run ("retrained") for every queried workload, plus the
/// optimization layer the paper describes that heuristically merges redundant
/// pipeline stages back below the stage limit after crossover/mutation
/// damage.

#include <cstdint>
#include <memory>

#include "core/scheduler.hpp"
#include "models/zoo.hpp"
#include "sim/des.hpp"

namespace omniboost::sched {

struct ReducedSpace;  // sched/reduce.hpp

/// GA hyper-parameters.
struct GaConfig {
  std::size_t population = 8;
  std::size_t generations = 3;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.02;   ///< per-gene reassignment probability
  std::size_t elitism = 2;       ///< chromosomes copied unchanged
  std::size_t max_stages = 3;
  /// Relative noise of one fitness measurement: on the physical board each
  /// chromosome is timed over a short window, so the GA selects on noisy
  /// observations (a key reason it trails OmniBoost in the paper).
  double fitness_noise = 0.20;
  /// Board seconds consumed per fitness measurement; evaluations x this is
  /// the GA's per-mix "retraining" cost (~5 minutes in the paper).
  double board_seconds_per_eval = 12.0;
  std::uint64_t seed = 1234;
  /// Optional pre-computed reduction (sched::reduce_search_space) matching
  /// the scheduled workload: initial genes and mutations then draw only from
  /// each layer's surviving components. Best-effort — crossover and the
  /// stage-repair layer may still step outside the reduced space. Null (the
  /// default) leaves the evolution bit-identical to the pre-reduction GA
  /// (same RNG draw sequence).
  std::shared_ptr<const ReducedSpace> reduce;
};

/// The GA scheduler. Every fitness evaluation runs the board simulator —
/// the in-simulation analogue of the measurement-driven retraining that
/// makes the GA take ~5 minutes per mix on the physical board.
class GaScheduler final : public core::IScheduler {
 public:
  GaScheduler(const models::ModelZoo& zoo, const device::DeviceSpec& device,
              GaConfig config = {});

  std::string name() const override { return "GA"; }
  core::ScheduleResult schedule(const workload::Workload& w) override;

  /// Merge-repair ("optimization layer"): while a DNN exceeds the stage
  /// limit, its shortest segment is absorbed into the neighbouring segment,
  /// removing redundant pipeline stages. Exposed for unit tests.
  static void repair_stages(sim::Assignment& a, std::size_t max_stages);

 private:
  const models::ModelZoo* zoo_;
  sim::DesSimulator board_;
  GaConfig config_;
};

}  // namespace omniboost::sched
