// Unit and property tests for the dense tensor substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using omniboost::tensor::Shape;
using omniboost::tensor::shape_size;
using omniboost::tensor::Tensor;

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  Tensor t({4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ZeroExtentRejected) {
  EXPECT_THROW(Tensor({2, 0, 3}), std::invalid_argument);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);  // offset 1*3 + 2
  t.at({0, 1}) = 3.0f;
  EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, OffsetMatchesAt) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.offset({1, 2, 3}), 1u * 12 + 2u * 4 + 3u);
  EXPECT_EQ(t.offset({0, 0, 0}), 0u);
}

TEST(Tensor, BoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
  EXPECT_THROW(t.at({0, 3}), std::invalid_argument);
  EXPECT_THROW(t.at({0}), std::invalid_argument);  // rank mismatch
  EXPECT_THROW(t[6], std::invalid_argument);
  EXPECT_THROW(t.extent(2), std::invalid_argument);
}

TEST(Tensor, FromVectorAndFromData) {
  const Tensor v = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v[1], 2.0f);
  const Tensor m = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(m.at({1, 0}), 3.0f);
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at({2, 1}), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  const Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({10, 20, 30});
  EXPECT_EQ((a + b)[2], 33.0f);
  EXPECT_EQ((b - a)[0], 9.0f);
  EXPECT_EQ((a * b)[1], 40.0f);
  EXPECT_EQ((a * 2.0f)[2], 6.0f);
  EXPECT_EQ((2.0f * a)[2], 6.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({-1, 5, 2, -7});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.25f);
  EXPECT_FLOAT_EQ(t.min(), -7.0f);
  EXPECT_FLOAT_EQ(t.max(), 5.0f);
  EXPECT_EQ(t.argmax(), 1u);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(1.0f + 25.0f + 4.0f + 49.0f));
}

TEST(Tensor, EmptyReductionsThrow) {
  Tensor t;
  EXPECT_THROW(t.min(), std::invalid_argument);
  EXPECT_THROW(t.max(), std::invalid_argument);
  EXPECT_THROW(t.argmax(), std::invalid_argument);
  EXPECT_EQ(t.mean(), 0.0f);
}

TEST(Tensor, ApplyTransformsEveryElement) {
  Tensor t = Tensor::from_vector({1, 2, 3});
  t.apply([](float x) { return x * x; });
  EXPECT_EQ(t[2], 9.0f);
}

TEST(Tensor, EqualityIsStructural) {
  const Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(a, b);
  b[0] = 9.0f;
  EXPECT_NE(a, b);
  EXPECT_NE(a, a.reshaped({4}));  // same data, different shape
}

TEST(Tensor, ShapeSizeHelper) {
  EXPECT_EQ(shape_size({}), 1u);
  EXPECT_EQ(shape_size({3, 4, 5}), 60u);
}

TEST(Tensor, ShapeStreamFormat) {
  // Shape is an alias of std::vector, so ADL will not find the inserter;
  // call it qualified as library code does.
  std::ostringstream os;
  omniboost::tensor::operator<<(os, Shape{3, 11, 37});
  EXPECT_EQ(os.str(), "[3, 11, 37]");
}

// Property: (a + b) - b == a for random tensors.
class TensorAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TensorAlgebraProperty, AddSubRoundTrip) {
  omniboost::util::Rng rng(GetParam());
  Tensor a({3, 5, 2}), b({3, 5, 2});
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(-10, 10));
    b[i] = static_cast<float>(rng.uniform(-10, 10));
  }
  const Tensor c = (a + b) - b;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(c[i], a[i], 1e-4f);
}

TEST_P(TensorAlgebraProperty, ScalarDistributes) {
  omniboost::util::Rng rng(GetParam() ^ 0xabcd);
  Tensor a({4, 4});
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(rng.uniform(-5, 5));
  const Tensor lhs = a * 3.0f;
  const Tensor rhs = a + a + a;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorAlgebraProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- GEMM / im2col compute kernels (tensor/gemm.hpp) -------------------------

using omniboost::tensor::col2im;
using omniboost::tensor::conv_out_extent;
using omniboost::tensor::gemm;
using omniboost::tensor::im2col;
using omniboost::tensor::matmul;

Tensor random_tensor(const Shape& shape, omniboost::util::Rng& rng) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(-2.0, 2.0));
  return t;
}

/// The naive triple loop the blocked kernel is verified against.
void naive_gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float beta, float* c,
                std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      const double prior = beta == 0.0f ? 0.0 : beta * c[i * ldc + j];
      c[i * ldc + j] = static_cast<float>(alpha * acc + prior);
    }
  }
}

struct GemmCase {
  std::size_t m, n, k;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesNaiveReferenceUnderAllTransposes) {
  const GemmCase g = GetParam();
  omniboost::util::Rng rng(g.m * 131 + g.n * 17 + g.k);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const Tensor a =
          random_tensor(ta ? Shape{g.k, g.m} : Shape{g.m, g.k}, rng);
      const Tensor b =
          random_tensor(tb ? Shape{g.n, g.k} : Shape{g.k, g.n}, rng);
      Tensor want({g.m, g.n});
      Tensor got({g.m, g.n});
      naive_gemm(ta, tb, g.m, g.n, g.k, 1.0f, a.data(), a.extent(1), b.data(),
                 b.extent(1), 0.0f, want.data(), g.n);
      gemm(ta, tb, g.m, g.n, g.k, 1.0f, a.data(), a.extent(1), b.data(),
           b.extent(1), 0.0f, got.data(), g.n);
      for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(want[i], got[i], 1e-4)
            << "ta=" << ta << " tb=" << tb << " element " << i;
    }
  }
}

// Spans the micro-tile (4x16) and cache-block (64/128/256) boundaries and
// their off-by-one neighbours, plus degenerate single-row/column shapes.
INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{1, 16, 3},
                      GemmCase{4, 16, 8}, GemmCase{5, 17, 9},
                      GemmCase{3, 1, 12}, GemmCase{8, 90, 27},
                      GemmCase{24, 396, 216}, GemmCase{65, 33, 129},
                      GemmCase{64, 256, 128}, GemmCase{67, 259, 131}));

TEST(Gemm, AlphaBetaSemantics) {
  omniboost::util::Rng rng(77);
  const Tensor a = random_tensor({3, 4}, rng);
  const Tensor b = random_tensor({4, 5}, rng);
  Tensor c({3, 5}, 2.0f);
  Tensor want = c;
  naive_gemm(false, false, 3, 5, 4, 0.5f, a.data(), 4, b.data(), 5, 1.5f,
             want.data(), 5);
  gemm(false, false, 3, 5, 4, 0.5f, a.data(), 4, b.data(), 5, 1.5f, c.data(),
       5);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-4);
}

TEST(Gemm, BetaZeroOverwritesNaN) {
  // beta == 0 must overwrite even NaN garbage in C (0 * NaN != 0).
  const Tensor a({2, 2}, 1.0f);
  const Tensor b({2, 2}, 1.0f);
  Tensor c({2, 2}, std::numeric_limits<float>::quiet_NaN());
  gemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f, c.data(),
       2);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 2.0f);
}

TEST(Gemm, KZeroScalesByBeta) {
  const Tensor a({2, 1}, 1.0f);
  const Tensor b({1, 2}, 1.0f);
  Tensor c({2, 2}, 3.0f);
  gemm(false, false, 2, 2, 0, 1.0f, a.data(), 1, b.data(), 2, 0.5f, c.data(),
       2);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 1.5f);
}

TEST(Gemm, BitDeterministicRunToRun) {
  omniboost::util::Rng rng(5);
  const Tensor a = random_tensor({37, 141}, rng);
  const Tensor b = random_tensor({141, 53}, rng);
  const Tensor c1 = matmul(a, b);
  const Tensor c2 = matmul(a, b);
  EXPECT_EQ(c1, c2);
}

TEST(Gemm, MatmulValidatesShapes) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({2, 3, 1}), Tensor({3, 2})),
               std::invalid_argument);
}

TEST(Im2col, ConvOutExtent) {
  EXPECT_EQ(conv_out_extent(5, 3, 1, 1), 5u);
  EXPECT_EQ(conv_out_extent(7, 3, 2, 0), 3u);
  EXPECT_EQ(conv_out_extent(4, 1, 1, 0), 4u);
  EXPECT_THROW(conv_out_extent(2, 5, 1, 1), std::invalid_argument);
  EXPECT_THROW(conv_out_extent(4, 3, 0, 0), std::invalid_argument);
}

/// Naive im2col: col((c,ky,kx), (oy,ox)) = padded image at the tap.
Tensor naive_im2col(const Tensor& img, std::size_t kernel, std::size_t stride,
                    std::size_t pad) {
  const std::size_t c = img.extent(0), h = img.extent(1), w = img.extent(2);
  const std::size_t oh = conv_out_extent(h, kernel, stride, pad);
  const std::size_t ow = conv_out_extent(w, kernel, stride, pad);
  Tensor cols({c * kernel * kernel, oh * ow});
  for (std::size_t ch = 0; ch < c; ++ch)
    for (std::size_t ky = 0; ky < kernel; ++ky)
      for (std::size_t kx = 0; kx < kernel; ++kx)
        for (std::size_t oy = 0; oy < oh; ++oy)
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride + ky) -
                static_cast<std::ptrdiff_t>(pad);
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const bool inside = iy >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(h) &&
                                ix >= 0 && ix < static_cast<std::ptrdiff_t>(w);
            cols.at({(ch * kernel + ky) * kernel + kx, oy * ow + ox}) =
                inside ? img.at({ch, static_cast<std::size_t>(iy),
                                 static_cast<std::size_t>(ix)})
                       : 0.0f;
          }
  return cols;
}

struct Im2colCase {
  std::size_t c, h, w, kernel, stride, pad;
};

class Im2colSweep : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(Im2colSweep, MatchesNaiveLowering) {
  const Im2colCase t = GetParam();
  omniboost::util::Rng rng(t.c + t.h * 3 + t.w * 7 + t.kernel);
  const Tensor img = random_tensor({t.c, t.h, t.w}, rng);
  const Tensor want = naive_im2col(img, t.kernel, t.stride, t.pad);
  const Tensor got = im2col(img, t.kernel, t.stride, t.pad);
  EXPECT_EQ(want.shape(), got.shape());
  EXPECT_EQ(want, got);  // pure data movement: must be exact
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colSweep,
    ::testing::Values(Im2colCase{1, 3, 3, 1, 1, 0},   // 1x1 identity
                      Im2colCase{2, 5, 7, 3, 1, 1},   // same, non-square
                      Im2colCase{3, 6, 4, 3, 2, 0},   // strided valid
                      Im2colCase{1, 7, 7, 5, 1, 2},   // wide kernel
                      Im2colCase{2, 4, 9, 3, 3, 1},   // stride 3
                      Im2colCase{4, 5, 5, 2, 2, 0},   // even kernel
                      Im2colCase{1, 1, 1, 1, 1, 0},   // degenerate pixel
                      Im2colCase{2, 3, 8, 3, 1, 2})); // pad > kernel/2

TEST(Im2col, IdentityFor1x1) {
  omniboost::util::Rng rng(3);
  const Tensor img = random_tensor({3, 4, 5}, rng);
  const Tensor cols = im2col(img, 1, 1, 0);
  EXPECT_EQ(cols.shape(), (Shape{3, 20}));
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST_P(Im2colSweep, Col2imIsTheExactAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // of the gradient lowering used by Conv2d::backward.
  const Im2colCase t = GetParam();
  omniboost::util::Rng rng(t.h * 11 + t.w);
  const Tensor x = random_tensor({t.c, t.h, t.w}, rng);
  const Tensor cols_x = im2col(x, t.kernel, t.stride, t.pad);
  const Tensor y = random_tensor(cols_x.shape(), rng);
  const Tensor back = col2im(y, t.c, t.h, t.w, t.kernel, t.stride, t.pad);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols_x.size(); ++i)
    lhs += static_cast<double>(cols_x[i]) * y[i];
  for (std::size_t i = 0; i < x.size(); ++i)
    rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

TEST(Im2col, RejectsBadShapes) {
  EXPECT_THROW(im2col(Tensor({2, 2}), 1, 1, 0), std::invalid_argument);
  EXPECT_THROW(im2col(Tensor({1, 2, 2}), 3, 1, 0), std::invalid_argument);
  EXPECT_THROW(col2im(Tensor({3, 4}), 1, 2, 2, 1, 1, 0),
               std::invalid_argument);
}

TEST(Gemm, ConvolutionViaIm2colMatchesDirectSum) {
  // End-to-end lowering sanity: W_matrix * im2col(x) equals the direct
  // convolution sum computed longhand.
  omniboost::util::Rng rng(19);
  const std::size_t ic = 2, oc = 3, k = 3, stride = 1, pad = 1;
  const std::size_t h = 5, w = 6;
  const Tensor x = random_tensor({ic, h, w}, rng);
  const Tensor wt = random_tensor({oc, ic * k * k}, rng);
  const Tensor y = matmul(wt, im2col(x, k, stride, pad));

  const std::size_t oh = conv_out_extent(h, k, stride, pad);
  const std::size_t ow = conv_out_extent(w, k, stride, pad);
  for (std::size_t o = 0; o < oc; ++o)
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::size_t c = 0; c < ic; ++c)
          for (std::size_t ky = 0; ky < k; ++ky)
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride + kx) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h) || ix < 0 ||
                  ix >= static_cast<std::ptrdiff_t>(w))
                continue;
              acc += static_cast<double>(
                         wt.at({o, (c * k + ky) * k + kx})) *
                     x.at({c, static_cast<std::size_t>(iy),
                           static_cast<std::size_t>(ix)});
            }
        EXPECT_NEAR(y.at({o, oy * ow + ox}), acc, 1e-4);
      }
}

}  // namespace
