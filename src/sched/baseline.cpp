#include "sched/baseline.hpp"

#include <chrono>

namespace omniboost::sched {

AllOnScheduler::AllOnScheduler(const models::ModelZoo& zoo,
                               device::ComponentId target, std::string name)
    : zoo_(&zoo), target_(target), name_(std::move(name)) {}

core::ScheduleResult AllOnScheduler::schedule(const workload::Workload& w) {
  const auto start = std::chrono::steady_clock::now();
  core::ScheduleResult r;
  r.mapping = sim::Mapping::all_on(w.layer_counts(*zoo_), target_);
  r.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return r;
}

}  // namespace omniboost::sched
