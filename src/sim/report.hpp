#pragma once
/// \file report.hpp
/// Simulation output: the measurements the paper reports (per-DNN
/// inferences/sec, the workload average T, and the per-component throughput
/// flow that trains the estimator).

#include <array>
#include <cstddef>
#include <vector>

#include "device/device.hpp"

namespace omniboost::sim {

/// Steady-state throughput measurement of one simulated workload execution.
struct ThroughputReport {
  /// Free-running inferences per second of each DNN stream (each stream
  /// processing frames back to back, limited only by its pipeline and the
  /// shared resources).
  std::vector<double> per_dnn_rate;

  /// Average throughput of each computing component (the estimator's three
  /// training targets, paper Fig. 3): the FLOP-weighted inference flow
  /// through the component under the synchronized window. Flows sum to
  /// M * T, so each output regresses the workload throughput.
  std::array<double, device::kNumComponents> per_component_rate{};

  /// The paper's T = (sum_i INF/sec_i) / M, measured the way a board
  /// evaluation measures a mix: every DNN completes the same number of
  /// frames inside one window, so each stream's INF/sec equals N / window
  /// and T collapses to the slowest stream's free-running rate. This is the
  /// quantity every scheduler in the paper is compared on, and it is what
  /// makes "evenly distributed" mappings win.
  double avg_throughput = 0.0;

  /// Mean of the free-running per-stream rates (diagnostic; this is what T
  /// would be if each stream were measured in isolation windows).
  double free_running_avg = 0.0;

  /// False when the workload exceeds board memory ("unresponsive"): all
  /// rates are zero in that case.
  bool feasible = true;

  /// Shared-DRAM pressure diagnostics.
  double dram_demand_gbps = 0.0;
  double dram_scale = 1.0;  ///< 1.0 when below the wall

  /// Per-component working-set contention multipliers that were in effect.
  std::array<double, device::kNumComponents> component_penalty{1.0, 1.0, 1.0};
};

}  // namespace omniboost::sim
