#include "util/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/require.hpp"

namespace omniboost::util {

namespace {

[[noreturn]] void raise(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// poll() one fd for readability; true = readable, false = timed out.
bool wait_readable(int fd, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = POLLIN;
  p.revents = 0;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) raise("poll");
  }
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& rhs) noexcept
    : fd_(std::exchange(rhs.fd_, -1)), buffer_(std::move(rhs.buffer_)) {}

TcpStream& TcpStream::operator=(TcpStream&& rhs) noexcept {
  if (this != &rhs) {
    close();
    fd_ = std::exchange(rhs.fd_, -1);
    buffer_ = std::move(rhs.buffer_);
  }
  return *this;
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void TcpStream::send_line(const std::string& line) {
  OB_REQUIRE(fd_ >= 0, "TcpStream::send_line: stream is not connected");
  OB_REQUIRE(line.find('\n') == std::string::npos,
             "TcpStream::send_line: line must not contain a newline");
  std::string wire = line;
  wire += '\n';
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

TcpStream::RecvStatus TcpStream::recv_line(std::string* out, int timeout_ms) {
  OB_REQUIRE(out != nullptr, "TcpStream::recv_line: null output");
  OB_REQUIRE(fd_ >= 0, "TcpStream::recv_line: stream is not connected");
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      *out = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return RecvStatus::kLine;
    }
    if (!wait_readable(fd_, timeout_ms)) return RecvStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise("recv");
    }
    if (n == 0) return RecvStatus::kClosed;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise("socket");
  const int one = 1;
  // Lets a restarted daemon rebind its port while old sockets linger in
  // TIME_WAIT; best-effort, so the return value is deliberately ignored.
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0)
    raise("bind 127.0.0.1:" + std::to_string(port));
  if (::listen(fd_, 8) < 0) raise("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0)
    raise("getsockname");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& rhs) noexcept
    : fd_(std::exchange(rhs.fd_, -1)), port_(std::exchange(rhs.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& rhs) noexcept {
  if (this != &rhs) {
    close();
    fd_ = std::exchange(rhs.fd_, -1);
    port_ = std::exchange(rhs.port_, 0);
  }
  return *this;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpListener::accept(int timeout_ms) {
  OB_REQUIRE(fd_ >= 0, "TcpListener::accept: listener is closed");
  if (!wait_readable(fd_, timeout_ms)) return TcpStream{};
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return TcpStream{client};
    if (errno != EINTR) raise("accept");
  }
}

TcpStream tcp_connect(const std::string& host, std::uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("tcp_connect: cannot parse host '" + host +
                             "' (numeric IPv4 or 'localhost' only)");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise("socket");
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return TcpStream{fd};
    if (errno != EINTR) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      raise("connect " + numeric + ":" + std::to_string(port));
    }
  }
}

}  // namespace omniboost::util
