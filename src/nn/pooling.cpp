#include "nn/layers.hpp"
#include "util/require.hpp"

namespace omniboost::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  OB_REQUIRE(kernel > 0, "MaxPool2d: kernel must be >= 1");
}

Tensor MaxPool2d::forward(const Tensor& x) {
  OB_REQUIRE(x.rank() == 4, "MaxPool2d: input must be NCHW");
  const std::size_t n = x.extent(0), c = x.extent(1), h = x.extent(2),
                    w = x.extent(3);
  OB_REQUIRE(h >= kernel_ && w >= kernel_,
             "MaxPool2d: input smaller than kernel");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;

  in_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  argmax_.assign(y.size(), 0);

  const float* xd = x.data();
  float* yd = y.data();
  std::size_t o = 0;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = xd + (b * c + ch) * h * w;
      const std::size_t plane_base = (b * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++o) {
          float best = plane[(oy * stride_) * w + ox * stride_];
          std::size_t best_off = (oy * stride_) * w + ox * stride_;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t off =
                  (oy * stride_ + ky) * w + (ox * stride_ + kx);
              if (plane[off] > best) {
                best = plane[off];
                best_off = off;
              }
            }
          }
          yd[o] = best;
          argmax_[o] = plane_base + best_off;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  OB_REQUIRE(!argmax_.empty(), "MaxPool2d::backward before forward");
  OB_REQUIRE(grad_out.size() == argmax_.size(),
             "MaxPool2d::backward: grad size mismatch");
  Tensor gx(in_shape_);
  for (std::size_t o = 0; o < argmax_.size(); ++o)
    gx[argmax_[o]] += grad_out[o];
  return gx;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  OB_REQUIRE(x.rank() == 4, "GlobalAvgPool: input must be NCHW");
  in_shape_ = x.shape();
  const std::size_t n = x.extent(0), c = x.extent(1),
                    plane = x.extent(2) * x.extent(3);
  Tensor y({n, c});
  const float* xd = x.data();
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      double s = 0.0;
      const float* p = xd + (b * c + ch) * plane;
      for (std::size_t i = 0; i < plane; ++i) s += p[i];
      y.at({b, ch}) = static_cast<float>(s / static_cast<double>(plane));
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  OB_REQUIRE(!in_shape_.empty(), "GlobalAvgPool::backward before forward");
  const std::size_t n = in_shape_[0], c = in_shape_[1],
                    plane = in_shape_[2] * in_shape_[3];
  OB_REQUIRE(grad_out.rank() == 2 && grad_out.extent(0) == n &&
                 grad_out.extent(1) == c,
             "GlobalAvgPool::backward: grad shape mismatch");
  Tensor gx(in_shape_);
  float* gxd = gx.data();
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at({b, ch}) * inv;
      float* p = gxd + (b * c + ch) * plane;
      for (std::size_t i = 0; i < plane; ++i) p[i] = g;
    }
  }
  return gx;
}

Tensor Flatten::forward(const Tensor& x) {
  OB_REQUIRE(x.rank() >= 2, "Flatten: input must have a batch dimension");
  in_shape_ = x.shape();
  const std::size_t n = x.extent(0);
  return x.reshaped({n, x.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  OB_REQUIRE(!in_shape_.empty(), "Flatten::backward before forward");
  return grad_out.reshaped(in_shape_);
}

}  // namespace omniboost::nn
