#pragma once
/// \file generator.hpp
/// Random generation of mixes and layer-to-component mappings — the
/// stochastic machinery behind the estimator's training set (500 random
/// workloads, §V), the motivational Fig. 1 sweep, and MCTS rollouts.

#include "sim/mapping.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace omniboost::workload {

/// Draws a mix of \p n distinct dataset models, uniformly at random.
/// Distinctness mirrors the embedding-tensor representation, which reserves
/// one column per dataset model.
Workload random_mix(util::Rng& rng, std::size_t n);

/// Random assignment of \p layers layers with at most \p max_stages
/// contiguous stages: draws a stage count, random distinct cut points, and a
/// component per segment such that neighbouring segments differ.
sim::Assignment random_assignment(util::Rng& rng, std::size_t layers,
                                  std::size_t max_stages);

/// Random stage-limited mapping for a whole workload.
sim::Mapping random_mapping(util::Rng& rng, const models::ModelZoo& zoo,
                            const Workload& w, std::size_t max_stages);

/// Two-way split used by the paper's motivational example: a random cut
/// point, with the prefix on \p first and the suffix on \p second (or the
/// whole network on one component when the cut lands at either end).
sim::Assignment random_two_way_split(util::Rng& rng, std::size_t layers,
                                     sim::ComponentId first,
                                     sim::ComponentId second);

}  // namespace omniboost::workload
