#pragma once
/// \file trace.hpp
/// Execution observability for the board simulator: per-component busy time
/// and utilization, queueing pressure, and per-stream frame-latency
/// distributions. This is the evidence layer behind the paper's narrative —
/// "the baseline saturates the GPU; OmniBoost evenly distributes the
/// workload" becomes a measurable utilization profile instead of prose.

#include <array>
#include <cstddef>
#include <vector>

#include "device/device.hpp"
#include "sim/report.hpp"

namespace omniboost::sim {

/// Activity of one computing component over the measurement window.
struct ComponentUtilization {
  double busy_seconds = 0.0;    ///< time spent executing segments
  double window_seconds = 0.0;  ///< measurement window length
  std::size_t executions = 0;   ///< segment executions completed in window
  std::size_t max_queue_depth = 0;  ///< worst backlog of pending frames

  /// Busy fraction in [0, 1].
  double utilization() const {
    return window_seconds > 0.0 ? busy_seconds / window_seconds : 0.0;
  }
};

/// Order statistics of a latency sample set (seconds).
struct LatencyStats {
  std::size_t samples = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// Nearest-rank percentiles over \p values (consumed; empty -> all zeros).
  static LatencyStats from_samples(std::vector<double> values);
};

/// One recorded segment execution (kept only when event recording is on).
struct TraceEvent {
  double start = 0.0;
  double end = 0.0;
  std::size_t dnn = 0;
  std::size_t stage = 0;
  device::ComponentId comp = device::ComponentId::kGpu;
};

/// Full observability record of one simulation run.
struct ExecutionTrace {
  std::array<ComponentUtilization, device::kNumComponents> components{};
  /// End-to-end frame latency per stream (injection at stage 0 through
  /// completion of the final stage), frames finishing inside the window.
  std::vector<LatencyStats> per_dnn_latency;
  /// Raw execution intervals; populated only when requested (can be large).
  std::vector<TraceEvent> events;
  double warmup_seconds = 0.0;
  double horizon_seconds = 0.0;
};

/// THE latency-SLO violation rule, shared by the serving runtime's
/// bookkeeping and OmniBoost's SLO-aware reward shaping so the search can
/// never optimize a different definition of "violating" than the one the
/// report counts against it. Stream \p dnn of a traced measurement breaks
/// \p slo_s (seconds; <= 0 = no SLO, never violated) when the run is
/// infeasible, the stream served no frame inside the window (no latency
/// samples, or a migration stall scaled its measured rate to zero — a
/// one-off stall cannot change per-frame latency, so starvation is how it
/// reaches this check), or its p99 frame latency exceeds the target.
bool breaks_slo(const ThroughputReport& report, const ExecutionTrace& trace,
                std::size_t dnn, double slo_s);

}  // namespace omniboost::sim
