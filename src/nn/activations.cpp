#include <cmath>

#include "nn/layers.hpp"
#include "util/require.hpp"

namespace omniboost::nn {

namespace {
// tanh-approximation constants (Hendrycks & Gimpel, 2016).
constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluCoef = 0.044715f;
}  // namespace

float GELU::value(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCoef * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float GELU::derivative(float x) {
  const float x3 = x * x * x;
  const float inner = kSqrt2OverPi * (x + kGeluCoef * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  const float dinner = kSqrt2OverPi * (1.0f + 3.0f * kGeluCoef * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
}

Tensor GELU::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  y.apply([](float v) { return value(v); });
  return y;
}

Tensor GELU::backward(const Tensor& grad_out) {
  OB_REQUIRE(!input_.empty(), "GELU::backward before forward");
  OB_REQUIRE(grad_out.shape() == input_.shape(),
             "GELU::backward: grad shape mismatch");
  Tensor gx(grad_out.shape());
  for (std::size_t i = 0; i < gx.size(); ++i)
    gx[i] = grad_out[i] * derivative(input_[i]);
  return gx;
}

Tensor ReLU::forward(const Tensor& x) {
  input_ = x;
  Tensor y = x;
  y.apply([](float v) { return v > 0.0f ? v : 0.0f; });
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  OB_REQUIRE(!input_.empty(), "ReLU::backward before forward");
  OB_REQUIRE(grad_out.shape() == input_.shape(),
             "ReLU::backward: grad shape mismatch");
  Tensor gx(grad_out.shape());
  for (std::size_t i = 0; i < gx.size(); ++i)
    gx[i] = input_[i] > 0.0f ? grad_out[i] : 0.0f;
  return gx;
}

}  // namespace omniboost::nn
