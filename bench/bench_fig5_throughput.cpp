/// \file bench_fig5_throughput.cpp
/// Regenerates Figure 5 (§V-A): normalized average throughput of Baseline
/// (all-on-GPU), MOSAIC, GA and OmniBoost over five random mixes each of
/// 3, 4 and 5 concurrent DNNs — plus the repo's own reference point: a
/// budgeted branch-and-bound (BnB) column and a `gap_vs_bound` column, the
/// certified distance between OmniBoost's mapping and BnB's admissible upper
/// bound on the analytic objective (0 = provably optimal w.r.t. the bound).
///
/// Paper shapes to reproduce:
///  * 3-DNN mixes (5a): OmniBoost ~+54% over baseline, ahead of MOSAIC/GA;
///    at least one light mix where all schedulers are close.
///  * 4-DNN mixes (5b): the big win — baseline and MOSAIC overload the GPU;
///    OmniBoost reaches multiples of the baseline (paper: x4.6 avg) and
///    stays ahead of the GA (paper: +23%).
///  * 5-DNN mixes (5c): everything saturates; gains compress (paper:
///    MOSAIC ~baseline, GA +7%, OmniBoost +22%).

#include <algorithm>

#include "bench_common.hpp"
#include "sched/bnb.hpp"

using namespace omniboost;

namespace {

/// Certified optimality gap of mapping \p m against BnB's upper bound \p ub:
/// both sides scored on the analytic objective the bound is admissible for.
double gap_vs_bound(const bench::Context& ctx, const sim::AnalyticModel& model,
                    const workload::Workload& w, const sim::Mapping& m,
                    double ub) {
  if (ub <= 0.0) return 0.0;
  const double got = model.evaluate(w.resolve(ctx.zoo()), m).avg_throughput;
  return std::max(0.0, (ub - got) / ub);
}

void run_mix_size(bench::Context& ctx, const sim::AnalyticModel& analytic,
                  std::size_t mix_size, std::uint64_t seed) {
  util::Rng rng(seed);

  auto baseline = sched::AllOnScheduler::gpu_baseline(ctx.zoo());
  sched::MosaicScheduler mosaic(ctx.zoo(), ctx.device());
  sched::GaScheduler ga(ctx.zoo(), ctx.device());
  core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator());
  sched::BnbConfig bnb_cfg;
  bnb_cfg.timeout_ms = static_cast<double>(bench::scaled(200, 50));
  sched::BranchAndBoundScheduler bnb("BnB", ctx.zoo(), ctx.device(), bnb_cfg);

  util::Table t({"mix", "workload", "Baseline", "MOSAIC", "GA", "OmniBoost",
                 "BnB", "gap_vs_bound"});
  std::array<double, 5> sums{};
  double gap_sum = 0.0;

  for (int mix = 1; mix <= 5; ++mix) {
    const workload::Workload w = workload::random_mix(rng, mix_size);
    const double tb = ctx.measure(w, baseline.schedule(w).mapping);
    const auto omni_r = omni.schedule(w);
    const auto bnb_r = bnb.schedule(w);
    std::array<double, 5> norm{};
    norm[0] = 1.0;
    norm[1] = ctx.measure(w, mosaic.schedule(w).mapping) / tb;
    norm[2] = ctx.measure(w, ga.schedule(w).mapping) / tb;
    norm[3] = ctx.measure(w, omni_r.mapping) / tb;
    norm[4] = ctx.measure(w, bnb_r.mapping) / tb;
    for (std::size_t s = 0; s < norm.size(); ++s) sums[s] += norm[s];
    const double gap = gap_vs_bound(ctx, analytic, w, omni_r.mapping,
                                    bnb_r.upper_bound.value_or(0.0));
    gap_sum += gap;

    t.add_row({"mix-" + std::to_string(mix), w.describe(),
               util::fmt(norm[0], 2), util::fmt(norm[1], 2),
               util::fmt(norm[2], 2), util::fmt(norm[3], 2),
               util::fmt(norm[4], 2), util::fmt(gap, 3)});
  }
  t.add_row({"Average", "",
             util::fmt(sums[0] / 5.0, 2), util::fmt(sums[1] / 5.0, 2),
             util::fmt(sums[2] / 5.0, 2), util::fmt(sums[3] / 5.0, 2),
             util::fmt(sums[4] / 5.0, 2), util::fmt(gap_sum / 5.0, 3)});

  std::printf("--- Fig. 5%c: five random mixes of %zu concurrent DNNs "
              "(normalized to all-on-GPU; gap_vs_bound = certified distance "
              "of OmniBoost from BnB's upper bound, analytic objective) ---\n",
              static_cast<char>('a' + (mix_size - 3)), mix_size);
  bench::report("fig5_throughput_mix" + std::to_string(mix_size), t);
  std::printf("OmniBoost vs baseline: x%.2f | vs MOSAIC: x%.2f | vs GA: "
              "%+.0f%%\n\n",
              sums[3] / sums[0], sums[3] / sums[1],
              (sums[3] / sums[2] - 1.0) * 100.0);
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 7;
  bench::banner("Fig. 5 — multi-DNN throughput comparison",
                "Figures 5a-5c, Section V-A", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();
  const sim::AnalyticModel analytic(ctx.device());

  run_mix_size(ctx, analytic, 3, kSeed + 3);
  run_mix_size(ctx, analytic, 4, kSeed + 4);
  run_mix_size(ctx, analytic, 5, kSeed + 5);

  std::printf("paper check: ordering Baseline < MOSAIC < GA < OmniBoost on "
              "average; largest gains at 4-DNN mixes; compressed gains at "
              "5-DNN mixes; gap_vs_bound shrinks as mixes saturate the "
              "board\n");
  return 0;
}
