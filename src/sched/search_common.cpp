#include "sched/search_common.hpp"

#include <utility>

#include "util/require.hpp"

namespace omniboost::sched {

WorkloadEvaluatorFactory estimator_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::shared_ptr<const core::ThroughputEstimator> estimator) {
  OB_REQUIRE(estimator != nullptr,
             "estimator_evaluator_factory: null estimator");
  OB_REQUIRE(estimator->trained(),
             "estimator_evaluator_factory: estimator must be trained");
  return [&zoo, &embedding, estimator = std::move(estimator)](
             const workload::Workload& w) -> core::MappingEvaluator {
    (void)zoo;
    return [&embedding, estimator, w](const sim::Mapping& m) {
      return estimator->predict_reward(embedding.masked_input(w, m));
    };
  };
}

WorkloadEvaluatorFactory oracle_evaluator_factory(
    const models::ModelZoo& zoo,
    std::shared_ptr<const sim::DesSimulator> board) {
  OB_REQUIRE(board != nullptr, "oracle_evaluator_factory: null simulator");
  return [&zoo, board = std::move(board)](
             const workload::Workload& w) -> core::MappingEvaluator {
    const sim::NetworkList nets = w.resolve(zoo);
    return [board, nets](const sim::Mapping& m) {
      return board->simulate(nets, m).avg_throughput;
    };
  };
}

WorkloadEvaluatorFactory analytic_evaluator_factory(
    const models::ModelZoo& zoo,
    std::shared_ptr<const sim::AnalyticModel> model) {
  OB_REQUIRE(model != nullptr, "analytic_evaluator_factory: null model");
  return [&zoo, model = std::move(model)](
             const workload::Workload& w) -> core::MappingEvaluator {
    const sim::NetworkList nets = w.resolve(zoo);
    return [model, nets](const sim::Mapping& m) {
      return model->evaluate(nets, m).avg_throughput;
    };
  };
}

WorkloadEvaluatorFactory ensemble_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::vector<std::shared_ptr<const core::ThroughputEstimator>> members) {
  OB_REQUIRE(!members.empty(), "ensemble_evaluator_factory: empty ensemble");
  for (const auto& m : members) {
    OB_REQUIRE(m != nullptr, "ensemble_evaluator_factory: null member");
    OB_REQUIRE(m->trained(),
               "ensemble_evaluator_factory: every member must be trained");
  }
  return [&zoo, &embedding, members = std::move(members)](
             const workload::Workload& w) -> core::MappingEvaluator {
    (void)zoo;
    return [&embedding, members, w](const sim::Mapping& m) {
      const tensor::Tensor input = embedding.masked_input(w, m);
      double sum = 0.0;
      for (const auto& est : members) sum += est->predict_reward(input);
      return sum / static_cast<double>(members.size());
    };
  };
}

}  // namespace omniboost::sched
