// ThroughputEstimator persistence: the design-time/run-time split. A trained
// estimator saved to disk and reloaded must reproduce predictions bit-exactly
// (weights, architecture config, and fitted target preprocessing all travel).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/estimator.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"

namespace {

using namespace omniboost;
using core::EstimatorConfig;
using core::SampleSet;
using core::ThroughputEstimator;
using tensor::Tensor;

constexpr std::size_t kM = 11;
constexpr std::size_t kL = 37;

/// Small synthetic training set (same construction as estimator_test).
SampleSet make_synthetic(std::size_t n, util::Rng& rng) {
  SampleSet set;
  for (std::size_t s = 0; s < n; ++s) {
    Tensor x({3, kM, kL});
    std::array<double, 3> mass{};
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < kM * kL; ++i) {
        const bool active = rng.chance(0.15);
        const float v = active ? static_cast<float>(rng.uniform(0.1, 1)) : 0.0f;
        x[c * kM * kL + i] = v;
        mass[c] += v;
      }
    }
    set.inputs.push_back(std::move(x));
    set.targets.push_back({30.0 / (1.0 + mass[0]), 20.0 / (1.0 + mass[1]),
                           8.0 / (1.0 + mass[2])});
  }
  return set;
}

ThroughputEstimator make_trained(std::uint64_t seed = 21) {
  util::Rng rng(seed);
  const SampleSet data = make_synthetic(64, rng);
  ThroughputEstimator est(kM, kL);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 5;
  est.fit(data, 8, l1, tc);
  return est;
}

TEST(EstimatorIO, UntrainedSaveIsRejected) {
  ThroughputEstimator est(kM, kL);
  std::stringstream buf;
  EXPECT_THROW(est.save(buf), std::invalid_argument);
}

TEST(EstimatorIO, StreamRoundTripIsBitExact) {
  ThroughputEstimator a = make_trained();
  std::stringstream buf;
  a.save(buf);
  ThroughputEstimator b = ThroughputEstimator::load(buf);

  EXPECT_TRUE(b.trained());
  EXPECT_EQ(a.num_params(), b.num_params());

  util::Rng rng(33);
  const SampleSet probes = make_synthetic(6, rng);
  for (const Tensor& x : probes.inputs) {
    const auto pa = a.predict(x);
    const auto pb = b.predict(x);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(pa[d], pb[d]) << "output " << d;
    }
    EXPECT_DOUBLE_EQ(a.predict_reward(x), b.predict_reward(x));
  }
}

TEST(EstimatorIO, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ob_estimator_test.bin")
          .string();
  ThroughputEstimator a = make_trained(55);
  a.save_file(path);
  ThroughputEstimator b = ThroughputEstimator::load_file(path);

  util::Rng rng(3);
  const SampleSet probes = make_synthetic(3, rng);
  for (const Tensor& x : probes.inputs) {
    EXPECT_DOUBLE_EQ(a.predict_reward(x), b.predict_reward(x));
  }
  std::remove(path.c_str());
}

TEST(EstimatorIO, ConfigVariantsTravel) {
  // A ReLU / no-log-compression estimator restores its exact configuration
  // (different architecture flags must not be silently dropped).
  EstimatorConfig cfg;
  cfg.use_gelu = false;
  cfg.log_targets = false;

  util::Rng rng(77);
  const SampleSet data = make_synthetic(48, rng);
  ThroughputEstimator a(kM, kL, cfg);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 3;
  a.fit(data, 8, l1, tc);

  std::stringstream buf;
  a.save(buf);
  ThroughputEstimator b = ThroughputEstimator::load(buf);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_reward(data.inputs[i]),
                     b.predict_reward(data.inputs[i]));
  }
}

TEST(EstimatorIO, RejectsForeignAndTruncatedStreams) {
  std::stringstream garbage("OBNN pretending to be an estimator");
  EXPECT_THROW(ThroughputEstimator::load(garbage), std::runtime_error);

  ThroughputEstimator a = make_trained(91);
  std::stringstream buf;
  a.save(buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 64);
  std::stringstream cut(bytes);
  EXPECT_THROW(ThroughputEstimator::load(cut), std::runtime_error);
}

TEST(EstimatorIO, MissingFileThrows) {
  EXPECT_THROW(ThroughputEstimator::load_file("/nonexistent/estimator.bin"),
               std::runtime_error);
}

}  // namespace
