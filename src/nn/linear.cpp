#include <cmath>

#include "nn/gemm_dispatch.hpp"
#include "nn/layers.hpp"
#include "util/require.hpp"

namespace omniboost::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias)
    : in_f_(in_features),
      out_f_(out_features),
      has_bias_(bias),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  OB_REQUIRE(in_features > 0 && out_features > 0,
             "Linear: feature counts must be positive");
}

std::vector<Param*> Linear::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

void Linear::init(util::Rng& rng) {
  const double std = std::sqrt(2.0 / static_cast<double>(in_f_));
  for (std::size_t i = 0; i < weight_.value.size(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, std));
  bias_.value.zero();
}

Tensor Linear::forward(const Tensor& x) {
  OB_REQUIRE(x.rank() == 2, "Linear: input must be (N, F)");
  OB_REQUIRE(x.extent(1) == in_f_, "Linear: feature mismatch");
  input_ = x;

  const std::size_t n = x.extent(0);
  Tensor y({n, out_f_});
  const float* xd = x.data();
  const float* wd = weight_.value.data();
  float* yd = y.data();

  if (kernel_kind_ != KernelKind::kReference) {
    // Y (n x out) = X (n x in) * W^T (in x out), then the bias row.
    detail::dispatch_gemm(kernel_kind_, false, true, n, out_f_, in_f_, 1.0f,
                          xd, in_f_, wd, in_f_, 0.0f, yd, out_f_);
    if (has_bias_) {
      for (std::size_t b = 0; b < n; ++b) {
        float* yrow = yd + b * out_f_;
        for (std::size_t o = 0; o < out_f_; ++o) yrow[o] += bias_.value[o];
      }
    }
    return y;
  }

  // Reference path (bit-frozen, unchanged from the seed tree).
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t o = 0; o < out_f_; ++o) {
      float acc = has_bias_ ? bias_.value[o] : 0.0f;
      const float* wrow = wd + o * in_f_;
      const float* xrow = xd + b * in_f_;
      for (std::size_t i = 0; i < in_f_; ++i) acc += wrow[i] * xrow[i];
      yd[b * out_f_ + o] = acc;
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  OB_REQUIRE(!input_.empty(), "Linear::backward before forward");
  const std::size_t n = input_.extent(0);
  OB_REQUIRE(grad_out.extent(0) == n && grad_out.extent(1) == out_f_,
             "Linear::backward: grad shape mismatch");

  Tensor gx({n, in_f_});
  const float* xd = input_.data();
  const float* wd = weight_.value.data();
  const float* gd = grad_out.data();
  float* gxd = gx.data();
  float* gwd = weight_.grad.data();
  float* gbd = bias_.grad.data();

  if (kernel_kind_ != KernelKind::kReference) {
    // gX (n x in)  = gY (n x out)   * W (out x in)
    // gW (out x in) += gY^T (out x n) * X (n x in)
    detail::dispatch_gemm(kernel_kind_, false, false, n, in_f_, out_f_, 1.0f,
                          gd, out_f_, wd, in_f_, 0.0f, gxd, in_f_);
    detail::dispatch_gemm(kernel_kind_, true, false, out_f_, in_f_, n, 1.0f,
                          gd, out_f_, xd, in_f_, 1.0f, gwd, in_f_);
    if (has_bias_) {
      for (std::size_t b = 0; b < n; ++b) {
        const float* grow = gd + b * out_f_;
        for (std::size_t o = 0; o < out_f_; ++o) gbd[o] += grow[o];
      }
    }
    return gx;
  }

  // Reference path (bit-frozen, unchanged from the seed tree).
  for (std::size_t b = 0; b < n; ++b) {
    const float* xrow = xd + b * in_f_;
    const float* grow = gd + b * out_f_;
    float* gxrow = gxd + b * in_f_;
    for (std::size_t o = 0; o < out_f_; ++o) {
      const float g = grow[o];
      if (has_bias_) gbd[o] += g;
      const float* wrow = wd + o * in_f_;
      float* gwrow = gwd + o * in_f_;
      for (std::size_t i = 0; i < in_f_; ++i) {
        gwrow[i] += g * xrow[i];
        gxrow[i] += g * wrow[i];
      }
    }
  }
  return gx;
}

}  // namespace omniboost::nn
