#include <algorithm>
#include <cmath>

#include "nn/layers.hpp"
#include "util/require.hpp"

namespace omniboost::nn {

namespace {

/// Output-column range [lo, hi) for which ix = ox*stride + kx - pad lies in
/// [0, w).
void ox_bounds(std::size_t ow, std::size_t w, std::size_t stride,
               std::ptrdiff_t off, std::size_t& lo, std::size_t& hi) {
  // ox*stride + off in [0, w)  =>  ox in [ceil(-off/stride), (w-1-off)/stride]
  std::ptrdiff_t lo_s = 0;
  if (off < 0)
    lo_s = (-off + static_cast<std::ptrdiff_t>(stride) - 1) /
           static_cast<std::ptrdiff_t>(stride);
  std::ptrdiff_t hi_s = -1;
  if (static_cast<std::ptrdiff_t>(w) - 1 - off >= 0)
    hi_s = (static_cast<std::ptrdiff_t>(w) - 1 - off) /
           static_cast<std::ptrdiff_t>(stride);
  lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(lo_s, 0));
  hi = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(hi_s + 1, static_cast<std::ptrdiff_t>(ow)));
  if (hi < lo) hi = lo;
}

}  // namespace

Conv2d::Conv2d(std::size_t in_ch, std::size_t out_ch, std::size_t kernel,
               std::size_t stride, std::size_t padding, bool bias)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({out_ch, in_ch, kernel, kernel}),
      bias_({out_ch}) {
  OB_REQUIRE(in_ch > 0 && out_ch > 0, "Conv2d: channels must be positive");
  OB_REQUIRE(kernel > 0 && stride > 0, "Conv2d: kernel/stride must be >= 1");
}

std::vector<Param*> Conv2d::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

void Conv2d::init(util::Rng& rng) {
  // Kaiming-normal for GELU/ReLU-style activations: std = sqrt(2 / fan_in).
  const double fan_in =
      static_cast<double>(in_ch_) * static_cast<double>(kernel_ * kernel_);
  const double std = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < weight_.value.size(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, std));
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& x) {
  OB_REQUIRE(x.rank() == 4, "Conv2d: input must be NCHW");
  OB_REQUIRE(x.extent(1) == in_ch_, "Conv2d: channel mismatch");
  input_ = x;

  const std::size_t n = x.extent(0), h = x.extent(2), w = x.extent(3);
  OB_REQUIRE(h + 2 * padding_ >= kernel_ && w + 2 * padding_ >= kernel_,
             "Conv2d: input smaller than kernel");
  const std::size_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const std::size_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;

  Tensor y({n, out_ch_, oh, ow});
  const float* xd = x.data();
  const float* wd = weight_.value.data();
  float* yd = y.data();

  if (has_bias_) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        float* yplane = yd + (b * out_ch_ + oc) * oh * ow;
        const float bias = bias_.value[oc];
        for (std::size_t i = 0; i < oh * ow; ++i) yplane[i] = bias;
      }
    }
  }
  // Batch innermost (between kernel tap and output rows): the weight load
  // and the column-bounds arithmetic of one (oc, ic, ky, kx) tap are hoisted
  // across all N samples, so batched forwards (predict_batch, the MCTS
  // expansion waves) pay them once per tap instead of once per sample.
  // For n == 1 the work is identical to the sample-outer order.
  for (std::size_t oc = 0; oc < out_ch_; ++oc) {
    for (std::size_t ic = 0; ic < in_ch_; ++ic) {
      const float* wplane = wd + (oc * in_ch_ + ic) * kernel_ * kernel_;
      for (std::size_t ky = 0; ky < kernel_; ++ky) {
        for (std::size_t kx = 0; kx < kernel_; ++kx) {
          const float wv = wplane[ky * kernel_ + kx];
          if (wv == 0.0f) continue;
          const auto off_x = static_cast<std::ptrdiff_t>(kx) -
                             static_cast<std::ptrdiff_t>(padding_);
          std::size_t lo, hi;
          ox_bounds(ow, w, stride_, off_x, lo, hi);
          for (std::size_t b = 0; b < n; ++b) {
            const float* xplane = xd + (b * in_ch_ + ic) * h * w;
            float* yplane = yd + (b * out_ch_ + oc) * oh * ow;
            for (std::size_t oy = 0; oy < oh; ++oy) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* xrow =
                  xplane + static_cast<std::size_t>(iy) * w;
              float* yrow = yplane + oy * ow;
              if (stride_ == 1) {
                const float* xs = xrow + off_x;
                for (std::size_t ox = lo; ox < hi; ++ox)
                  yrow[ox] += wv * xs[ox];
              } else {
                for (std::size_t ox = lo; ox < hi; ++ox)
                  yrow[ox] +=
                      wv * xrow[static_cast<std::size_t>(
                               static_cast<std::ptrdiff_t>(ox * stride_) +
                               off_x)];
              }
            }
          }
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  OB_REQUIRE(!input_.empty(), "Conv2d::backward before forward");
  const Tensor& x = input_;
  const std::size_t n = x.extent(0), h = x.extent(2), w = x.extent(3);
  const std::size_t oh = grad_out.extent(2), ow = grad_out.extent(3);
  OB_REQUIRE(grad_out.extent(0) == n && grad_out.extent(1) == out_ch_,
             "Conv2d::backward: grad shape mismatch");

  Tensor gx(x.shape());
  const float* xd = x.data();
  const float* wd = weight_.value.data();
  const float* gd = grad_out.data();
  float* gxd = gx.data();
  float* gwd = weight_.grad.data();
  float* gbd = bias_.grad.data();

  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* gplane = gd + (b * out_ch_ + oc) * oh * ow;
      if (has_bias_) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < oh * ow; ++i) acc += gplane[i];
        gbd[oc] += acc;
      }
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xplane = xd + (b * in_ch_ + ic) * h * w;
        float* gxplane = gxd + (b * in_ch_ + ic) * h * w;
        const float* wplane = wd + (oc * in_ch_ + ic) * kernel_ * kernel_;
        float* gwplane = gwd + (oc * in_ch_ + ic) * kernel_ * kernel_;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            const float wv = wplane[ky * kernel_ + kx];
            const auto off_x = static_cast<std::ptrdiff_t>(kx) -
                               static_cast<std::ptrdiff_t>(padding_);
            std::size_t lo, hi;
            ox_bounds(ow, w, stride_, off_x, lo, hi);
            float gw_acc = 0.0f;
            for (std::size_t oy = 0; oy < oh; ++oy) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* xrow = xplane + static_cast<std::size_t>(iy) * w;
              float* gxrow = gxplane + static_cast<std::size_t>(iy) * w;
              const float* grow = gplane + oy * ow;
              if (stride_ == 1) {
                const float* xs = xrow + off_x;
                float* gxs = gxrow + off_x;
                for (std::size_t ox = lo; ox < hi; ++ox) {
                  const float g = grow[ox];
                  gw_acc += g * xs[ox];
                  gxs[ox] += g * wv;
                }
              } else {
                for (std::size_t ox = lo; ox < hi; ++ox) {
                  const float g = grow[ox];
                  const auto ix = static_cast<std::size_t>(
                      static_cast<std::ptrdiff_t>(ox * stride_) + off_x);
                  gw_acc += g * xrow[ix];
                  gxrow[ix] += g * wv;
                }
              }
            }
            gwplane[ky * kernel_ + kx] += gw_acc;
          }
        }
      }
    }
  }
  return gx;
}

}  // namespace omniboost::nn
