#include "util/args.hpp"

#include <cstdio>
#include <stdexcept>

namespace omniboost::util {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

ArgParser& ArgParser::option(const std::string& name, const std::string& help,
                             const std::string& default_value) {
  specs_.push_back(ArgSpec{name, help, default_value, false});
  return *this;
}

ArgParser& ArgParser::flag(const std::string& name, const std::string& help) {
  specs_.push_back(ArgSpec{name, help, "", true});
  return *this;
}

const ArgSpec& ArgParser::spec(const std::string& name) const {
  for (const ArgSpec& s : specs_) {
    if (s.name == name) return s;
  }
  throw std::logic_error("ArgParser: option --" + name + " was never declared");
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw std::invalid_argument("unexpected argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const ArgSpec& s = spec_or_throw(name);
    if (s.is_flag) {
      if (has_inline) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      values_.emplace_back(name, "true");
      continue;
    }
    if (!has_inline) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + name + " expects a value");
      }
      value = argv[++i];
    }
    values_.emplace_back(name, std::move(value));
  }
  return true;
}

const ArgSpec& ArgParser::spec_or_throw(const std::string& name) const {
  for (const ArgSpec& s : specs_) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown option: --" + name);
}

bool ArgParser::has(const std::string& name) const {
  spec(name);  // validate declaration
  for (const auto& [k, v] : values_) {
    if (k == name) return true;
  }
  return false;
}

std::string ArgParser::get(const std::string& name) const {
  const ArgSpec& s = spec(name);
  for (auto it = values_.rbegin(); it != values_.rend(); ++it) {
    if (it->first == name) return it->second;
  }
  if (s.default_str.empty() && !s.is_flag) {
    throw std::invalid_argument("missing required option --" + name);
  }
  return s.default_str;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects an integer, got '" + v + "'");
  }
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects a number, got '" + v + "'");
  }
}

bool ArgParser::get_flag(const std::string& name) const {
  const ArgSpec& s = spec(name);
  if (!s.is_flag) {
    throw std::logic_error("ArgParser::get_flag: --" + name + " is not a flag");
  }
  return has(name);
}

std::string ArgParser::help_text() const {
  std::string out = program_ + " — " + summary_ + "\n\nOptions:\n";
  for (const ArgSpec& s : specs_) {
    out += "  --" + s.name;
    if (!s.is_flag) out += " <value>";
    out += "\n      " + s.help;
    if (!s.default_str.empty()) out += " (default: " + s.default_str + ")";
    out += "\n";
  }
  out += "  --help\n      Show this message.\n";
  return out;
}

}  // namespace omniboost::util
