// Batched estimator inference and the batched/memoized search path:
//  * predict_batch parity with per-sample predict across all zoo models
//  * the {batch_size = 1, workers = 1} determinism regression against the
//    paper's sequential (scalar, uncached) search
//  * identical rewards for identical mappings under batched/cached configs

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

const core::EmbeddingTensor& embedding() {
  // CostModel keeps a pointer into the spec, so the spec must outlive it —
  // a make_hikey970() temporary here is a stack-use-after-scope (caught by
  // the ASan CI flavor).
  static const device::DeviceSpec spec = device::make_hikey970();
  static const device::CostModel cost(spec);
  static const core::EmbeddingTensor e(zoo(), cost);
  return e;
}

/// A quickly-trained estimator shared by the search-path tests (the
/// regression checks compare search trajectories, not estimator accuracy).
std::shared_ptr<const core::ThroughputEstimator> trained_estimator() {
  static const auto est = [] {
    const device::DeviceSpec spec = device::make_hikey970();
    const sim::DesSimulator board(spec);
    core::DatasetConfig dc;
    dc.samples = 60;
    const core::SampleSet data =
        core::generate_dataset(zoo(), embedding(), board, dc);
    auto e = std::make_shared<core::ThroughputEstimator>(
        embedding().models_dim(), embedding().layers_dim());
    nn::L1Loss l1;
    nn::TrainConfig tc;
    tc.epochs = 4;
    e->fit(data, 10, l1, tc);
    return e;
  }();
  return est;
}

TEST(PredictBatch, MatchesPerSamplePredictAcrossZooModels) {
  // One single-model workload per zoo DNN, several random mappings each:
  // the batched forward must reproduce the scalar path to 1e-6 on every
  // output (it is bit-identical by construction; the tolerance guards the
  // contract, not the implementation).
  core::ThroughputEstimator est(embedding().models_dim(),
                                embedding().layers_dim());
  util::Rng rng(23);
  std::vector<tensor::Tensor> inputs;
  for (ModelId id : models::kAllModels) {
    const Workload w{{id}};
    for (int i = 0; i < 3; ++i)
      inputs.push_back(embedding().masked_input(
          w, workload::random_mapping(rng, zoo(), w, 3)));
  }
  // Plus mixed multi-DNN batches.
  for (int i = 0; i < 6; ++i) {
    const Workload w = workload::random_mix(rng, 4);
    inputs.push_back(embedding().masked_input(
        w, workload::random_mapping(rng, zoo(), w, 3)));
  }

  const auto batched = est.predict_batch(inputs);
  const auto rewards = est.predict_rewards(inputs);
  ASSERT_EQ(batched.size(), inputs.size());
  ASSERT_EQ(rewards.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto scalar = est.predict(inputs[i]);
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_NEAR(batched[i][d], scalar[d], 1e-6)
          << "sample " << i << " output " << d;
    EXPECT_NEAR(rewards[i], est.predict_reward(inputs[i]), 1e-6);
  }

  EXPECT_TRUE(est.predict_batch({}).empty());
  // Shape validation applies per sample.
  EXPECT_THROW(est.predict_batch({tensor::Tensor({2, 2, 2})}),
               std::invalid_argument);
}

TEST(PredictBatch, RepeatedInputsYieldIdenticalOutputs) {
  // Bitwise reproducibility of the forward pass: the evaluation memo relies
  // on a mapping's reward being a single well-defined double.
  core::ThroughputEstimator est(embedding().models_dim(),
                                embedding().layers_dim());
  util::Rng rng(29);
  const Workload w = workload::random_mix(rng, 3);
  const tensor::Tensor input = embedding().masked_input(
      w, workload::random_mapping(rng, zoo(), w, 3));
  const auto rewards =
      est.predict_rewards({input, input, input});
  ASSERT_EQ(rewards.size(), 3u);
  EXPECT_EQ(rewards[0], rewards[1]);
  EXPECT_EQ(rewards[1], rewards[2]);
  EXPECT_EQ(rewards[0], est.predict_reward(input));
}

TEST(SequentialRegression, Batch1Workers1MatchesThePaperPath) {
  // The pre-PR seed path: a scalar evaluator in a strictly sequential,
  // uncached search. {batch_size = 1, workers = 1} through the production
  // scheduler (batched evaluator plumbing + memo enabled) must reproduce it
  // bit-for-bit, for every seed.
  const auto est = trained_estimator();
  const Workload w{{ModelId::kVgg16, ModelId::kAlexNet, ModelId::kMobileNet}};

  for (const std::uint64_t seed : {3u, 5u, 7u}) {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = 150;
    cfg.mcts.seed = seed;
    cfg.batch_size = 1;
    cfg.workers = 1;
    core::OmniBoostScheduler sched(zoo(), embedding(), est, cfg);
    const auto got = sched.schedule(w);

    core::MctsConfig reference = cfg.mcts;
    reference.cache = false;  // pre-memo accounting and evaluator call count
    const core::MappingEvaluator scalar = [&](const sim::Mapping& m) {
      return est->predict_reward(embedding().masked_input(w, m));
    };
    const core::MctsResult want =
        core::Mcts(w.layer_counts(zoo()), scalar, reference).search();

    EXPECT_EQ(got.mapping, want.best_mapping) << "seed " << seed;
    EXPECT_EQ(got.expected_reward, want.best_reward) << "seed " << seed;
    EXPECT_EQ(got.evaluations + got.cache_hits, want.evaluations)
        << "seed " << seed;
  }
}

TEST(SequentialRegression, BatchedAndCachedConfigsAgreeOnRewards) {
  // Wider waves change which mappings the search visits, but never what a
  // given mapping is worth: the decision's reward must re-evaluate to the
  // exact same double through the scalar path.
  const auto est = trained_estimator();
  const Workload w{{ModelId::kResNet34, ModelId::kSqueezeNet}};

  for (const std::size_t batch : {1u, 4u, 16u}) {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = 120;
    cfg.mcts.seed = 11;
    cfg.batch_size = batch;
    core::OmniBoostScheduler sched(zoo(), embedding(), est, cfg);
    const auto r = sched.schedule(w);
    EXPECT_EQ(r.evaluations + r.cache_hits, 120u);
    EXPECT_TRUE(r.mapping.within_stage_limit(3));
    EXPECT_EQ(r.expected_reward,
              est->predict_reward(embedding().masked_input(w, r.mapping)))
        << "batch " << batch;

    // Same config, second run: decisions are deterministic under batching.
    const auto again = sched.schedule(w);
    EXPECT_EQ(r.mapping, again.mapping) << "batch " << batch;
  }
}

}  // namespace
