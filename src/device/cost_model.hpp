#pragma once
/// \file cost_model.hpp
/// Kernel-level roofline timing (the paper's Eq. 1): the execution time of a
/// layer on a computing component is the sum of its kernels' times, each of
/// which is the larger of its compute time and its memory-traffic time, plus
/// the component's dispatch overhead.

#include "device/device.hpp"
#include "models/layer_desc.hpp"

namespace omniboost::device {

/// Evaluates layer/kernel execution times against a DeviceSpec.
///
/// Times returned here are *uncontended*: the simulator scales them with the
/// per-component working-set penalty and applies the DRAM wall.
class CostModel {
 public:
  explicit CostModel(const DeviceSpec& device) : device_(&device) {}

  /// b_k_alpha — execution time of one kernel on one component (seconds).
  double kernel_time(const models::KernelDesc& kernel, ComponentId comp) const;

  /// B_l_alpha = sum over kernels (Eq. 1).
  double layer_time(const models::LayerDesc& layer, ComponentId comp) const;

  /// Total solo time of a layer range [first, last] (inclusive).
  double segment_time(const models::NetworkDesc& net, std::size_t first,
                      std::size_t last, ComponentId comp) const;

  /// Resident working set of a layer range: weights plus the largest
  /// intermediate activation (buffers are reused between layers).
  double segment_working_set_bytes(const models::NetworkDesc& net,
                                   std::size_t first, std::size_t last) const;

  /// DRAM traffic of one inference through a layer range.
  double segment_traffic_bytes(const models::NetworkDesc& net,
                               std::size_t first, std::size_t last) const;

  /// Cost of moving an activation of \p bytes between two distinct
  /// components (0 when from == to).
  double transfer_time(double bytes, ComponentId from, ComponentId to) const;

  const DeviceSpec& device() const { return *device_; }

 private:
  const DeviceSpec* device_;
};

}  // namespace omniboost::device
