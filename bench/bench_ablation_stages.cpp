/// \file bench_ablation_stages.cpp
/// Ablation A3 (DESIGN.md): the pipeline-stage limit. The paper marks any
/// mapping with more stages than x = #components as a *losing* MCTS state to
/// avoid redundant transfers. This bench sweeps the limit (1, 2, 3 and
/// effectively-unlimited) and reports achieved throughput and the transfer
/// burden of the chosen mappings.

#include "bench_common.hpp"

using namespace omniboost;

namespace {

/// Total inter-stage transfers of a mapping.
std::size_t count_transfers(const sim::Mapping& m) {
  std::size_t n = 0;
  for (std::size_t d = 0; d < m.num_dnns(); ++d) n += m.stages(d) - 1;
  return n;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 37;
  bench::banner("Ablation A3 — pipeline-stage limit",
                "Section IV-C (losing states)", kSeed);

  bench::Context ctx;
  ctx.train_estimator();

  util::Rng rng(kSeed);
  std::vector<workload::Workload> mixes;
  for (int i = 0; i < 3; ++i) mixes.push_back(workload::random_mix(rng, 4));

  auto baseline = sched::AllOnScheduler::gpu_baseline(ctx.zoo());

  util::Table t({"stage limit", "avg normalized T", "avg transfers/mapping",
                 "avg max stages"});
  for (std::size_t limit : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{64}}) {
    core::OmniBoostConfig cfg;
    cfg.mcts.stage_limit = limit;
    core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator(),
                                  cfg);
    double norm = 0.0, transfers = 0.0, stages = 0.0;
    for (const auto& w : mixes) {
      const auto r = omni.schedule(w);
      const double tb = ctx.measure(w, baseline.schedule(w).mapping);
      norm += ctx.measure(w, r.mapping) / tb;
      transfers += static_cast<double>(count_transfers(r.mapping));
      stages += static_cast<double>(r.mapping.max_stages());
    }
    t.add_row(limit >= 64 ? "unlimited" : std::to_string(limit),
              {norm / 3.0, transfers / 3.0, stages / 3.0}, 2);
  }
  bench::report("ablation_stages", t);

  std::printf("\npaper check: x = 3 (the component count) captures the gains; "
              "lifting the limit multiplies pipeline transfers without a "
              "matching throughput return — the rationale for the losing-state "
              "rule\n");
  return 0;
}
