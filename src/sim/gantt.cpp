#include "sim/gantt.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "util/require.hpp"

namespace omniboost::sim {

namespace {

char stream_glyph(std::size_t dnn) {
  if (dnn < 10) return static_cast<char>('0' + dnn);
  if (dnn < 36) return static_cast<char>('a' + (dnn - 10));
  return '#';
}

}  // namespace

std::string render_gantt(const ExecutionTrace& trace,
                         const GanttConfig& config) {
  OB_REQUIRE(!trace.events.empty(),
             "render_gantt: trace has no events (run simulate_traced with "
             "record_events = true)");
  OB_REQUIRE(config.width >= 8, "render_gantt: width too small");

  const double t0 = config.include_warmup ? 0.0 : trace.warmup_seconds;
  const double t1 = trace.horizon_seconds;
  OB_REQUIRE(t1 > t0, "render_gantt: empty time window");
  const double bucket = (t1 - t0) / static_cast<double>(config.width);

  // Per component, per column: coverage per stream; dominant stream wins.
  std::string out;
  for (const device::ComponentId comp : device::kAllComponents) {
    std::string lane(config.width, '.');
    std::vector<std::vector<std::pair<std::size_t, double>>> cover(
        config.width);
    for (const TraceEvent& ev : trace.events) {
      if (ev.comp != comp) continue;
      const double start = std::max(ev.start, t0);
      const double end = std::min(ev.end, t1);
      if (end <= start) continue;
      const auto first = static_cast<std::size_t>((start - t0) / bucket);
      auto last = static_cast<std::size_t>((end - t0) / bucket);
      last = std::min(last, config.width - 1);
      for (std::size_t col = first; col <= last; ++col) {
        const double col_start = t0 + static_cast<double>(col) * bucket;
        const double overlap = std::min(end, col_start + bucket) -
                               std::max(start, col_start);
        if (overlap <= 0.0) continue;
        auto& entries = cover[col];
        const auto it = std::find_if(entries.begin(), entries.end(),
                                     [&](const auto& e) {
                                       return e.first == ev.dnn;
                                     });
        if (it == entries.end()) {
          entries.emplace_back(ev.dnn, overlap);
        } else {
          it->second += overlap;
        }
      }
    }
    for (std::size_t col = 0; col < config.width; ++col) {
      const auto& entries = cover[col];
      if (entries.empty()) continue;
      const auto best = std::max_element(
          entries.begin(), entries.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      lane[col] = stream_glyph(best->first);
    }

    std::string name(device::component_name(comp));
    name.resize(7, ' ');
    out += name + "|" + lane + "|\n";
  }
  return out;
}

}  // namespace omniboost::sim
