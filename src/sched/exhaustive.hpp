#pragma once
/// \file exhaustive.hpp
/// Exact enumeration of the stage-limited mapping space. The paper argues
/// (§II, §IV-C) that exhaustive evaluation is infeasible at realistic sizes —
/// this module both *quantifies* that claim (closed-form space counts used by
/// the motivation bench) and, for deliberately tiny workloads, *computes the
/// true optimum*, which the test suite uses to certify how close MCTS and the
/// other searches land.

#include <cstdint>
#include <vector>

#include "core/scheduler.hpp"
#include "models/zoo.hpp"
#include "sched/search_common.hpp"

namespace omniboost::sched {

/// Number of assignments of \p layers layers with at most \p stage_limit
/// contiguous stages on kNumComponents components:
///   sum_{s=1..min(x,L)} C(L-1, s-1) * k * (k-1)^(s-1).
/// Returned as double — realistic layer counts overflow 64-bit integers.
double count_assignments(std::size_t layers, std::size_t stage_limit);

/// Size of the full mapping space of a workload: the product of its DNNs'
/// assignment counts.
double count_mappings(const models::ModelZoo& zoo, const workload::Workload& w,
                      std::size_t stage_limit);

/// Materializes every stage-limited assignment of one DNN.
/// Throws when the count exceeds \p max_count (guard against accidental
/// exponential blow-up).
std::vector<sim::Assignment> enumerate_assignments(std::size_t layers,
                                                   std::size_t stage_limit,
                                                   std::size_t max_count);

/// Exhaustive-search controls.
struct ExhaustiveConfig {
  std::size_t stage_limit = 3;
  /// Hard cap on the number of complete mappings that may be evaluated;
  /// schedule() throws when the workload's space is larger.
  std::size_t max_mappings = 2'000'000;
};

/// The exact optimizer. Only usable on tiny workloads; the ablation tests
/// use it as ground truth.
class ExhaustiveScheduler final : public core::IScheduler {
 public:
  ExhaustiveScheduler(std::string name, const models::ModelZoo& zoo,
                      WorkloadEvaluatorFactory evaluator,
                      ExhaustiveConfig config = {});

  std::string name() const override { return name_; }

  /// Evaluates every mapping in the space and returns the argmax.
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  WorkloadEvaluatorFactory factory_;
  ExhaustiveConfig config_;
};

}  // namespace omniboost::sched
