/// \file bench_serving_slo.cpp
/// Latency-SLO-aware serving under churn costs: the follow-up question to
/// bench_serving_scenarios. There, churn was *reported but free* and
/// throughput was the only objective; here every moved segment charges a
/// one-off migration stall (weight re-upload + warm-up via
/// sim::MigrationCostModel) into the epoch measurement, and arriving streams
/// carry latency SLOs the scheduler is judged against.
///
/// The driver sweeps three operating points of (SLO tightness x migration
/// cost) — from a loose latency target on a cheap-migration board to a tight
/// target on an expensive one — and replays the same scenario through:
///
///  * Baseline / MOSAIC / Greedy — stateless one-shot schedulers behind the
///    default reschedule() adapter (SLO-blind, but Baseline never moves a
///    layer, so it pays zero stall),
///  * OmniBoost-cold — full-budget SLO-blind re-search each event; its
///    from-scratch mappings move many layers, so migration stalls land
///    squarely in its measured T,
///  * OmniBoost-warm — SLO- and churn-aware reschedule(): candidates are
///    DES-replayed and SLO breakers are shaped down (migration stalls enter
///    the replay through the starvation rule), while the warm prior keeps
///    churn — and thus the stalls charged into measured T — low.
///
/// Shapes to look for: OmniBoost-warm with FEWER SLO violations and
/// equal-or-better measured T than OmniBoost-cold at most sweep points
/// (tighter points favour warm harder), with an order less migration stall.
///
/// Tables: one per sweep point (BENCH_serving_slo_<point>.json) plus the
/// warm-vs-cold summary (BENCH_serving_slo.json).

#include "bench_common.hpp"

#include <array>

#include "core/serving.hpp"
#include "sched/greedy.hpp"
#include "workload/scenario.hpp"

using namespace omniboost;

namespace {

struct SweepPoint {
  const char* name;
  /// SLO = tightness x the stream's solo all-on-GPU p99 latency. Values
  /// well above the solo latency because a multi-DNN mix queues: 1.0 would
  /// be unservable under any placement once a second stream lands.
  double tightness;
  /// MigrationCostConfig::scale: 1 = the calibrated link-bandwidth cost.
  double migration_scale;
};

/// Solo all-on-GPU p99 frame latency per model — the per-model latency unit
/// the SLO band is expressed in.
std::array<double, models::kNumModels> solo_latency_s(bench::Context& ctx) {
  std::array<double, models::kNumModels> solo{};
  for (std::size_t m = 0; m < models::kNumModels; ++m) {
    const workload::Workload w{{models::kAllModels[m]}};
    const sim::Mapping gpu = sim::Mapping::all_on(
        w.layer_counts(ctx.zoo()), device::ComponentId::kGpu);
    const auto traced =
        ctx.board().simulate_traced(w.resolve(ctx.zoo()), gpu);
    solo[m] = traced.trace.per_dnn_latency[0].p99;
  }
  return solo;
}

/// The shared base scenario with per-arrival SLOs attached for one point.
workload::Scenario with_slos(
    const workload::Scenario& base, double tightness,
    const std::array<double, models::kNumModels>& solo) {
  std::vector<workload::ScenarioEvent> events = base.events();
  for (workload::ScenarioEvent& e : events) {
    if (e.kind != workload::ScenarioEventKind::kArrive) continue;
    e.slo_ms = tightness * 1e3 * solo[models::model_index(e.model)];
  }
  return workload::Scenario(std::move(events));
}

core::OmniBoostConfig omni_config(std::uint64_t seed) {
  core::OmniBoostConfig cfg;
  cfg.mcts.budget = bench::scaled(500, 48);
  cfg.mcts.seed = seed;
  cfg.batch_size = 8;  // batched evaluate path (decision-identical)
  return cfg;
}

void add_row(util::Table& t, const std::string& name,
             const core::ServingReport& r) {
  t.add_row({name, std::to_string(r.decisions),
             util::fmt(r.mean_throughput, 3),
             std::to_string(r.total_slo_violations),
             std::to_string(r.total_slo_streams),
             util::fmt(100.0 * r.mean_churn, 1),
             util::fmt(1e3 * r.total_migration_stall_s, 1),
             std::to_string(r.total_migrated_segments),
             util::fmt(r.mean_incremental_decision_seconds, 4)});
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 29;
  bench::banner("serving under latency SLOs and churn costs",
                "beyond the paper: SLO- and migration-aware serving", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator...\n\n");
  ctx.train_estimator();

  const std::array<double, models::kNumModels> solo = solo_latency_s(ctx);

  // One medium-churn scenario shared by every sweep point, so differences
  // come from the SLO band and the migration price, never the event script.
  workload::ScenarioConfig scen;
  scen.events = bench::scaled(12, 5);
  scen.min_concurrent = 1;
  scen.max_concurrent = 4;
  scen.depart_bias = 0.45;
  scen.mean_interarrival_s = 3.0;
  util::Rng rng(util::fork_stream(kSeed, 0));
  const workload::Scenario base = workload::random_scenario(rng, scen);
  std::printf("base scenario: %s\n\n", base.describe().c_str());

  const SweepPoint points[] = {
      {"loose", 40.0, 1.0},
      {"medium", 25.0, 2.0},
      {"tight", 15.0, 4.0},
  };

  util::Table summary(
      {"sweep point", "slo tightness", "migration scale", "cold viol",
       "warm viol", "cold T inf/s", "warm T inf/s", "cold stall ms",
       "warm stall ms", "cold churn %", "warm churn %"});

  for (const SweepPoint& point : points) {
    const workload::Scenario scenario =
        with_slos(base, point.tightness, solo);
    std::printf("--- sweep point %s: tightness x%.0f, migration x%.1f ---\n",
                point.name, point.tightness, point.migration_scale);

    core::ServingConfig cold_cfg;
    cold_cfg.warm_start = false;
    cold_cfg.migration.enabled = true;
    cold_cfg.migration.scale = point.migration_scale;
    core::ServingConfig warm_cfg = cold_cfg;
    warm_cfg.warm_start = true;
    const core::ServingRuntime cold_rt(ctx.zoo(), ctx.board(), cold_cfg);
    const core::ServingRuntime warm_rt(ctx.zoo(), ctx.board(), warm_cfg);

    util::Table t({"scheduler", "decisions", "mean T inf/s", "SLO viol",
                   "SLO streams", "mean churn %", "stall ms",
                   "moved segments", "incr decision s"});

    auto baseline = sched::AllOnScheduler::gpu_baseline(ctx.zoo());
    add_row(t, "Baseline", cold_rt.run(baseline, scenario));
    sched::MosaicScheduler mosaic(ctx.zoo(), ctx.device());
    add_row(t, "MOSAIC", cold_rt.run(mosaic, scenario));
    sched::GreedyScheduler greedy(ctx.zoo(), ctx.device());
    add_row(t, "Greedy", cold_rt.run(greedy, scenario));

    core::OmniBoostScheduler omni_cold(ctx.zoo(), ctx.embedding(),
                                       ctx.estimator(), omni_config(kSeed));
    const core::ServingReport cold = cold_rt.run(omni_cold, scenario);
    add_row(t, "OmniBoost-cold", cold);

    core::OmniBoostScheduler omni_warm(ctx.zoo(), ctx.embedding(),
                                       ctx.estimator(), omni_config(kSeed));
    const core::ServingReport warm = warm_rt.run(omni_warm, scenario);
    add_row(t, "OmniBoost-warm", warm);

    bench::report(std::string("serving_slo_") + point.name, t);

    std::printf("warm vs cold: %zu vs %zu SLO violations, T %.3f vs %.3f "
                "inf/s, stall %.0f vs %.0f ms\n\n",
                warm.total_slo_violations, cold.total_slo_violations,
                warm.mean_throughput, cold.mean_throughput,
                1e3 * warm.total_migration_stall_s,
                1e3 * cold.total_migration_stall_s);

    summary.add_row({point.name, util::fmt(point.tightness, 1),
                     util::fmt(point.migration_scale, 1),
                     std::to_string(cold.total_slo_violations),
                     std::to_string(warm.total_slo_violations),
                     util::fmt(cold.mean_throughput, 3),
                     util::fmt(warm.mean_throughput, 3),
                     util::fmt(1e3 * cold.total_migration_stall_s, 1),
                     util::fmt(1e3 * warm.total_migration_stall_s, 1),
                     util::fmt(100.0 * cold.mean_churn, 1),
                     util::fmt(100.0 * warm.mean_churn, 1)});
  }

  std::printf("--- SLO tightness x migration cost summary ---\n");
  bench::report("serving_slo", summary);
  std::printf("\ncheck: OmniBoost-warm should show fewer (or equal) SLO "
              "violations and equal-or-better measured T than "
              "OmniBoost-cold at >= 2 of the 3 sweep points, at an order "
              "less migration stall\n");
  return 0;
}
