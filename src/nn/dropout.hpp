#pragma once
/// \file dropout.hpp
/// Inverted dropout: a regularization layer for estimator-capacity
/// experiments. Training mode zeroes each activation with probability p and
/// scales survivors by 1/(1-p) so the expected activation is unchanged;
/// inference mode is the identity.

#include <cstdint>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace omniboost::nn {

class Dropout final : public Module {
 public:
  /// \param p     drop probability in [0, 1)
  /// \param seed  deterministic mask stream (reseeded by init())
  explicit Dropout(float p, std::uint64_t seed = 11);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void init(util::Rng& rng) override;
  std::string name() const override { return "Dropout"; }

  float drop_probability() const { return p_; }

 private:
  float p_;
  util::Rng rng_;
  Tensor mask_;  ///< cached keep-mask (already scaled by 1/(1-p))
};

}  // namespace omniboost::nn
