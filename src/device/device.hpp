#pragma once
/// \file device.hpp
/// The heterogeneous-board model that substitutes for the physical HiKey970.
///
/// A DeviceSpec describes the computing components (GPU, big CPU cluster,
/// LITTLE CPU cluster), their per-kernel-kind efficiencies, inter-component
/// transfer links, the shared DRAM, and the contention parameters that
/// reproduce the board-level phenomena the paper's evaluation rests on
/// (GPU saturation under heavy multi-DNN residency, global memory wall,
/// out-of-memory unresponsiveness). Defaults in make_hikey970() are derived
/// from public HiKey970 / ARM-Compute-Library figures; DESIGN.md documents
/// the substitution.

#include <array>
#include <cstddef>
#include <string>

#include "models/layer_desc.hpp"

namespace omniboost::device {

/// The three computing components of the HiKey970 (paper §II).
enum class ComponentId : std::size_t {
  kGpu = 0,     ///< Mali-G72 MP12
  kBigCpu = 1,  ///< quad Cortex-A73 @ 2.36 GHz
  kLittleCpu = 2,  ///< quad Cortex-A53 @ 1.8 GHz
};

/// Number of computing components (the paper's x, also the max pipeline
/// stages per DNN).
inline constexpr std::size_t kNumComponents = 3;

inline constexpr std::array<ComponentId, kNumComponents> kAllComponents = {
    ComponentId::kGpu, ComponentId::kBigCpu, ComponentId::kLittleCpu};

constexpr std::size_t component_index(ComponentId id) {
  return static_cast<std::size_t>(id);
}

/// Short display name ("GPU", "big", "LITTLE").
std::string_view component_name(ComponentId id);

/// Achieved fraction of peak FLOPS per kernel category.
struct KernelEfficiency {
  double gemm = 0.5;
  double direct_conv = 0.5;
  double depthwise = 0.3;   ///< depthwise conv maps poorly to GPUs
  double elementwise = 0.2; ///< bias/activation/add/pool and friends
};

/// One computing component's performance model.
struct ComponentSpec {
  std::string name;
  double peak_gflops = 0.0;      ///< theoretical fp32 peak
  double mem_bw_gbps = 0.0;      ///< achievable local memory bandwidth
  double kernel_overhead_s = 0.0;///< fixed dispatch overhead per kernel
  KernelEfficiency efficiency;

  /// Resident working-set budget before locality collapses (bytes).
  double working_set_budget_bytes = 0.0;
  /// Exponent of the oversubscription penalty:
  /// service multiplier = max(1, ws / budget)^contention_exponent.
  double contention_exponent = 1.0;

  /// Fraction of peak available per kernel of the given kind.
  double kind_efficiency(models::KernelKind kind) const;
};

/// Inter-component transfer link (via shared memory + coherency traffic).
struct LinkSpec {
  double bandwidth_gbps = 3.0;  ///< effective copy bandwidth
  double latency_s = 1e-3;      ///< map/unmap + synchronization cost
};

/// The whole board.
struct DeviceSpec {
  std::string name;
  std::array<ComponentSpec, kNumComponents> components;
  LinkSpec link;                ///< uniform pairwise link model
  double dram_bw_gbps = 14.0;   ///< shared-DRAM bandwidth wall
  double memory_budget_bytes = 4.0e9;  ///< usable RAM before "unresponsive"
  /// Fixed framework residency per concurrent DNN stream (runtime arenas,
  /// graph metadata, pipeline buffers).
  double per_stream_overhead_bytes = 450e6;
  /// Per-inference framework cost charged to each stream's first pipeline
  /// stage (input staging, graph dispatch, output collection). Bounds how
  /// fast very light models can spin regardless of placement.
  double per_inference_overhead_s = 20e-3;
  /// Speed fraction the board currently runs at, in (0, 1]. 1 (full health)
  /// is the default; fleet fault handling (core::Cluster) lowers it on
  /// `throttle` events. Compute and DRAM service times scale by 1/throttle
  /// in both the analytic cost model and the DES; at exactly 1.0 the
  /// scaling is bit-exact identity (x / 1.0 == x in IEEE-754), so
  /// fault-free runs reproduce pre-throttle numbers bit-for-bit.
  double throttle = 1.0;

  const ComponentSpec& component(ComponentId id) const {
    return components[component_index(id)];
  }
  ComponentSpec& component(ComponentId id) {
    return components[component_index(id)];
  }
};

/// Calibrated HiKey970 model (Mali-G72 MP12 + 4xA73 + 4xA53, LPDDR4X).
DeviceSpec make_hikey970();

}  // namespace omniboost::device
