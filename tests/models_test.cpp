// The model zoo: per-network structural invariants and cross-checks against
// published FLOP/parameter figures.

#include <gtest/gtest.h>

#include <set>

#include "models/net_builder.hpp"
#include "models/zoo.hpp"

namespace {

using namespace omniboost::models;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

TEST(Zoo, HasAllElevenModels) {
  EXPECT_EQ(zoo().num_models(), kNumModels);
  EXPECT_EQ(kNumModels, 11u);
}

TEST(Zoo, MaxLayersIsResNet101) {
  EXPECT_EQ(zoo().max_layers(), zoo().network(ModelId::kResNet101).num_layers());
}

TEST(Zoo, NamesMatchIds) {
  for (ModelId id : kAllModels)
    EXPECT_EQ(zoo().network(id).name, model_name(id));
}

struct ModelExpectation {
  ModelId id;
  double gflops_lo, gflops_hi;     // published ballpark, generous bounds
  double weights_mb_lo, weights_mb_hi;
  std::size_t layers_lo, layers_hi;
};

class ZooSpotCheck : public ::testing::TestWithParam<ModelExpectation> {};

TEST_P(ZooSpotCheck, MatchesPublishedFigures) {
  const ModelExpectation e = GetParam();
  const NetworkDesc& n = zoo().network(e.id);
  EXPECT_GE(n.total_flops() / 1e9, e.gflops_lo) << n.name;
  EXPECT_LE(n.total_flops() / 1e9, e.gflops_hi) << n.name;
  EXPECT_GE(n.total_weight_bytes() / 1e6, e.weights_mb_lo) << n.name;
  EXPECT_LE(n.total_weight_bytes() / 1e6, e.weights_mb_hi) << n.name;
  EXPECT_GE(n.num_layers(), e.layers_lo) << n.name;
  EXPECT_LE(n.num_layers(), e.layers_hi) << n.name;
}

INSTANTIATE_TEST_SUITE_P(
    PublishedFigures, ZooSpotCheck,
    ::testing::Values(
        // AlexNet: ~61M params (244 MB fp32); ungrouped convs ~2.3 GFLOPs.
        ModelExpectation{ModelId::kAlexNet, 1.3, 2.6, 230, 260, 11, 11},
        // MobileNet v1: ~4.2M params, ~1.1 GFLOPs, 28 weight layers + gap/fc.
        ModelExpectation{ModelId::kMobileNet, 0.9, 1.4, 15, 19, 28, 30},
        // ResNet-34: ~21.8M params, ~7.3 GFLOPs.
        ModelExpectation{ModelId::kResNet34, 6.5, 8.2, 80, 95, 20, 20},
        // ResNet-50: ~25.6M params, ~8.2 GFLOPs.
        ModelExpectation{ModelId::kResNet50, 7.0, 9.0, 95, 110, 20, 20},
        // ResNet-101: ~44.5M params, ~15.2 GFLOPs.
        ModelExpectation{ModelId::kResNet101, 14.0, 16.5, 170, 190, 37, 37},
        // VGG-13: ~133M params, ~22.6 GFLOPs.
        ModelExpectation{ModelId::kVgg13, 21.0, 24.5, 520, 545, 18, 18},
        // VGG-16: ~138M params, ~31 GFLOPs.
        ModelExpectation{ModelId::kVgg16, 29.0, 33.0, 540, 565, 21, 21},
        // VGG-19: ~144M params, ~39 GFLOPs.
        ModelExpectation{ModelId::kVgg19, 37.0, 41.5, 565, 585, 24, 24},
        // SqueezeNet 1.0: ~1.25M params, ~1.7 GFLOPs.
        ModelExpectation{ModelId::kSqueezeNet, 1.2, 2.0, 4, 6, 22, 22},
        // Inception-v3: ~24M params, ~11.5 GFLOPs.
        ModelExpectation{ModelId::kInceptionV3, 10.0, 13.0, 85, 105, 20, 20},
        // Inception-v4: ~43M params, ~24.5 GFLOPs.
        ModelExpectation{ModelId::kInceptionV4, 22.0, 27.0, 150, 175, 25,
                         25}));

class ZooStructural : public ::testing::TestWithParam<ModelId> {};

TEST_P(ZooStructural, LayerShapesChain) {
  const NetworkDesc& n = zoo().network(GetParam());
  ASSERT_FALSE(n.layers.empty());
  EXPECT_EQ(n.layers.front().input, n.input);
  for (std::size_t l = 1; l < n.layers.size(); ++l)
    EXPECT_EQ(n.layers[l].input, n.layers[l - 1].output)
        << n.name << " layer " << l << " (" << n.layers[l].name << ")";
}

TEST_P(ZooStructural, LayerNamesUnique) {
  const NetworkDesc& n = zoo().network(GetParam());
  std::set<std::string> names;
  for (const auto& l : n.layers) names.insert(l.name);
  EXPECT_EQ(names.size(), n.layers.size()) << n.name;
}

TEST_P(ZooStructural, EveryLayerHasKernelsAndPositiveCost) {
  const NetworkDesc& n = zoo().network(GetParam());
  for (const auto& l : n.layers) {
    EXPECT_FALSE(l.kernels.empty()) << n.name << "/" << l.name;
    EXPECT_GT(l.traffic_bytes(), 0.0) << n.name << "/" << l.name;
    EXPECT_GT(l.output_bytes(), 0.0) << n.name << "/" << l.name;
    for (const auto& k : l.kernels) {
      EXPECT_GE(k.flops, 0.0);
      EXPECT_GT(k.bytes, 0.0);
    }
  }
}

TEST_P(ZooStructural, ClassifierHeadEmits1000Classes) {
  const NetworkDesc& n = zoo().network(GetParam());
  EXPECT_EQ(n.layers.back().output.c, 1000u) << n.name;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooStructural,
                         ::testing::ValuesIn(kAllModels),
                         // Not `info`: the INSTANTIATE macro declares its own
                         // `info` parameter in the enclosing scope, and the
                         // shadow trips -Wshadow under OMNIBOOST_WERROR.
                         [](const auto& param_info) {
                           std::string s(model_name(param_info.param));
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(NetBuilder, ConvOutExtent) {
  EXPECT_EQ(conv_out_extent(224, 11, 4, 2), 55u);  // AlexNet conv1
  EXPECT_EQ(conv_out_extent(224, 3, 1, 1), 224u);  // same padding
  EXPECT_EQ(conv_out_extent(7, 3, 2, 0), 3u);
  EXPECT_THROW(conv_out_extent(2, 5, 1, 0), std::invalid_argument);
}

TEST(NetBuilder, ConvKernelDecomposition) {
  // k>1 convs lower to im2col + GEMM; 1x1 convs skip im2col.
  NetBuilder b("t", {3, 8, 8});
  b.conv(4, 3, 1, 1, "c3").conv(4, 1, 1, 0, "c1");
  const NetworkDesc n = std::move(b).build();
  const auto& k3 = n.layers[0].kernels;
  ASSERT_GE(k3.size(), 3u);
  EXPECT_EQ(k3[0].kind, KernelKind::kIm2col);
  EXPECT_EQ(k3[1].kind, KernelKind::kGemm);
  const auto& k1 = n.layers[1].kernels;
  EXPECT_EQ(k1[0].kind, KernelKind::kGemm);
}

TEST(NetBuilder, ConvFlopsFormula) {
  NetBuilder b("t", {3, 8, 8});
  b.conv(4, 3, 1, 1, "c");
  const NetworkDesc n = std::move(b).build();
  // GEMM flops = 2 * k^2 * Cin * Cout * H * W; +bias +activation elementwise.
  const double gemm = 2.0 * 9 * 3 * 4 * 8 * 8;
  const double elementwise = 2.0 * 4 * 8 * 8;
  EXPECT_NEAR(n.layers[0].flops(), gemm + elementwise, 1.0);
}

TEST(NetBuilder, ResidualProjectionOnlyWhenNeeded) {
  NetBuilder b1("t", {64, 56, 56});
  b1.residual_basic(64, 1, "same");
  const NetworkDesc same = std::move(b1).build();
  NetBuilder b2("t", {64, 56, 56});
  b2.residual_basic(128, 2, "proj");
  const NetworkDesc proj = std::move(b2).build();
  // The projected block carries an extra conv's weights.
  const double same_w = 2.0 * 9 * 64 * 64 * 4;
  EXPECT_NEAR(same.layers[0].weight_bytes, same_w + 2 * 64 * 4, same_w * 0.01);
  EXPECT_GT(proj.layers[0].weight_bytes,
            (9.0 * 64 * 128 + 9.0 * 128 * 128) * 4);
}

TEST(NetBuilder, InceptionConcatenatesBranches) {
  NetBuilder b("t", {64, 17, 17});
  b.inception({{ConvSpec::square(32, 1)}, {ConvSpec::square(16, 3, 1, 1)}},
              8, 1, "mix");
  const NetworkDesc n = std::move(b).build();
  EXPECT_EQ(n.layers[0].output.c, 32u + 16 + 8);
  EXPECT_EQ(n.layers[0].output.h, 17u);
}

TEST(NetBuilder, InceptionPoolPassthroughKeepsChannels) {
  NetBuilder b("t", {64, 17, 17});
  b.inception({{ConvSpec::square(32, 3, 2, 0)}}, 0, 2, "red");
  const NetworkDesc n = std::move(b).build();
  EXPECT_EQ(n.layers[0].output.c, 32u + 64);
  EXPECT_EQ(n.layers[0].output.h, 8u);
}

TEST(NetBuilder, InceptionSpatialMismatchThrows) {
  NetBuilder b("t", {16, 17, 17});
  EXPECT_THROW(b.inception({{ConvSpec::square(8, 3, 2, 0)},
                            {ConvSpec::square(8, 1)}},
                           4, 1, "bad"),
               std::invalid_argument);
}

TEST(NetBuilder, MobileNetCounts28WeightLayers) {
  const NetworkDesc& n = zoo().network(ModelId::kMobileNet);
  std::size_t weight_layers = 0;
  for (const auto& l : n.layers)
    if (l.weight_bytes > 0.0) ++weight_layers;
  EXPECT_EQ(weight_layers, 28u);  // paper's motivational count
}

TEST(NetBuilder, Vgg19Has16ConvAnd3Fc) {
  const NetworkDesc& n = zoo().network(ModelId::kVgg19);
  std::size_t convs = 0, fcs = 0;
  for (const auto& l : n.layers) {
    convs += l.kind == LayerKind::kConv;
    fcs += l.kind == LayerKind::kFullyConnected;
  }
  EXPECT_EQ(convs, 16u);
  EXPECT_EQ(fcs, 3u);
}

TEST(NetBuilder, DepthwiseLayersMarked) {
  const NetworkDesc& n = zoo().network(ModelId::kMobileNet);
  std::size_t dw = 0;
  for (const auto& l : n.layers) dw += l.kind == LayerKind::kDepthwiseConv;
  EXPECT_EQ(dw, 13u);
}

TEST(Models, MakeModelThrowsOnBadId) {
  EXPECT_THROW(make_model(static_cast<ModelId>(99)), std::invalid_argument);
  EXPECT_THROW(model_name(static_cast<ModelId>(99)), std::invalid_argument);
}

TEST(Models, MotivationalExampleDesignSpace) {
  // §II: the four motivational DNNs span a design space counted via C(L, 3).
  const double l = static_cast<double>(
      zoo().network(ModelId::kAlexNet).num_layers() +
      zoo().network(ModelId::kMobileNet).num_layers() +
      zoo().network(ModelId::kVgg19).num_layers() +
      zoo().network(ModelId::kSqueezeNet).num_layers());
  const double c3 = l * (l - 1) * (l - 2) / 6.0;
  EXPECT_GT(c3, 50'000.0);   // paper: ~95,000
  EXPECT_LT(c3, 150'000.0);
}

}  // namespace
