// core::Cluster: the fleet router's contracts.
//  * a 1-board cluster with the trivial policy replays a scenario
//    bit-identically to plain ServingRuntime (mapping, throughput, churn,
//    SLO bookkeeping), 3 seeds, warm AND cold, Greedy and warm OmniBoost
//  * stream conservation: every arrival lands on exactly one board or is
//    counted rejected; departures always resolve; per-board epoch counts
//    reconcile with the fleet counters including migrations
//  * fleet totals equal the sum of the per-board reports
//  * repeated runs produce byte-identical ClusterReports for every policy
//  * admission rejects memory- and SLO-infeasible streams; rescue migration
//    moves a saturating arrival and prices the cross-board transfer

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "core/serving.hpp"
#include "device/cost_model.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/faults.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace omniboost;
using core::BoardSpec;
using core::Cluster;
using core::ClusterConfig;
using core::ClusterReport;
using core::ServingReport;
using models::ModelId;
using models::ModelZoo;
using workload::Scenario;
using workload::ScenarioEvent;
using workload::ScenarioEventKind;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

const device::DeviceSpec& spec() {
  static const device::DeviceSpec s = device::make_hikey970();
  return s;
}

const sim::DesSimulator& board() {
  static const sim::DesSimulator b(spec());
  return b;
}

const core::EmbeddingTensor& embedding() {
  static const device::CostModel cost(spec());
  static const core::EmbeddingTensor e(zoo(), cost);
  return e;
}

/// A quickly-trained estimator for the warm-OmniBoost equivalence pin (the
/// pin compares trajectories, not accuracy).
std::shared_ptr<const core::ThroughputEstimator> trained_estimator() {
  static const auto est = [] {
    core::DatasetConfig dc;
    dc.samples = 40;
    const core::SampleSet data =
        core::generate_dataset(zoo(), embedding(), board(), dc);
    auto e = std::make_shared<core::ThroughputEstimator>(
        embedding().models_dim(), embedding().layers_dim());
    nn::L1Loss l1;
    nn::TrainConfig tc;
    tc.epochs = 3;
    e->fit(data, 10, l1, tc);
    return e;
  }();
  return est;
}

/// %.17g so two reports fingerprint equal iff every double is bit-equal
/// (modulo the sign of zero, which no field here produces negatively).
void put(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g|", v);
  out += buf;
}
void put(std::string& out, std::size_t v) {
  out += std::to_string(v) + "|";
}

std::string fingerprint(const core::EpochReport& ep) {
  std::string out;
  put(out, ep.time_s);
  out += ep.event + "|" + ep.mix + "|";
  put(out, ep.mix_size);
  for (const sim::Assignment& a : ep.decision.mapping.assignments())
    for (const device::ComponentId c : a)
      out += std::to_string(static_cast<int>(c));
  out += "|";
  put(out, ep.decision.expected_reward);
  put(out, ep.decision.evaluations);
  put(out, ep.decision.cache_hits);
  put(out, ep.measured_throughput);
  out += ep.feasible ? "F|" : "f|";
  put(out, ep.surviving_layers);
  put(out, ep.moved_layers);
  put(out, ep.churn);
  for (const double s : ep.slo_s) put(out, s);
  for (const double l : ep.latency_p99_s) put(out, l);
  put(out, ep.slo_streams);
  put(out, ep.slo_violations);
  put(out, ep.migrated_segments);
  put(out, ep.migration_weight_bytes);
  put(out, ep.migration_stall_s);
  return out;
}

/// Everything except wall-clock decision latencies (those are genuinely
/// non-deterministic timings, never compared bit-wise).
std::string fingerprint(const ServingReport& r) {
  std::string out;
  for (const core::EpochReport& ep : r.epochs) out += fingerprint(ep) + "\n";
  put(out, r.decisions);
  put(out, r.mean_throughput);
  put(out, r.mean_churn);
  put(out, r.total_evaluations);
  put(out, r.total_cache_hits);
  put(out, r.total_slo_streams);
  put(out, r.total_slo_violations);
  put(out, r.total_migrated_segments);
  put(out, r.total_migration_stall_s);
  return out;
}

std::string fingerprint(const ClusterReport& r) {
  std::string out;
  for (const std::string& n : r.board_names) out += n + "|";
  for (const ServingReport& b : r.boards) out += fingerprint(b) + "==\n";
  put(out, r.offered_streams);
  put(out, r.admitted_streams);
  put(out, r.rejected_streams);
  put(out, r.rejection_rate);
  put(out, r.departures);
  put(out, r.rejected_departures);
  put(out, r.migrations);
  put(out, r.cross_board_stall_s);
  put(out, r.cross_board_weight_bytes);
  put(out, r.board_failures);
  put(out, r.board_throttles);
  put(out, r.board_recoveries);
  put(out, r.failovers);
  put(out, r.failover_stall_s);
  put(out, r.failover_weight_bytes);
  put(out, r.shed_streams);
  put(out, r.shed_departures);
  put(out, r.rebalances);
  put(out, r.rebalance_stall_s);
  put(out, r.downtime_board_s);
  put(out, r.degraded_epochs);
  put(out, r.resident_streams);
  put(out, r.decisions);
  put(out, r.fleet_throughput);
  put(out, r.total_slo_streams);
  put(out, r.total_slo_violations);
  put(out, r.total_evaluations);
  put(out, r.total_cache_hits);
  return out;
}

/// Churn-y seeded scenario with a few SLOs, the single-board pin's input.
Scenario pin_scenario(std::uint64_t seed) {
  workload::ScenarioConfig cfg;
  cfg.events = 10;
  cfg.max_concurrent = 3;
  cfg.depart_bias = 0.5;
  cfg.slo_fraction = 0.4;
  util::Rng rng(util::fork_stream(seed, 0));
  return workload::random_scenario(rng, cfg);
}

core::SchedulerFactory greedy_factory(const Cluster& cluster) {
  return [&cluster](std::size_t i) -> std::unique_ptr<core::IScheduler> {
    return std::make_unique<sched::GreedyScheduler>(
        zoo(), cluster.boards()[i].device);
  };
}

TEST(ClusterSingleBoard, ReplaysServingRuntimeBitIdenticallyThreeSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Scenario s = pin_scenario(seed);
    for (const bool warm : {true, false}) {
      core::ServingConfig sc;
      sc.warm_start = warm;

      sched::GreedyScheduler direct(zoo(), spec());
      const ServingReport plain =
          core::ServingRuntime(zoo(), board(), sc).run(direct, s);

      ClusterConfig cc;
      cc.serving = sc;
      cc.migrate = false;
      cc.admit_all = true;  // the trivial policy setup: everything routes
      const Cluster cluster(zoo(), {BoardSpec{"solo", spec()}}, cc);
      const auto policy = core::make_placement_policy("least-loaded");
      const ClusterReport rep =
          cluster.run(greedy_factory(cluster), s, *policy);

      ASSERT_EQ(rep.boards.size(), 1u);
      EXPECT_EQ(fingerprint(rep.boards[0]), fingerprint(plain))
          << "seed " << seed << " warm " << warm;
      EXPECT_EQ(rep.rejected_streams, 0u);
      EXPECT_EQ(rep.migrations, 0u);
    }
  }
}

TEST(ClusterSingleBoard, WarmOmniBoostReplaysServingRuntimeBitIdentically) {
  // The warm path with a genuinely stateful scheduler (carried memos, warm
  // search): one seed keeps the suite fast; the scheduler-state plumbing is
  // identical across seeds.
  const Scenario s = pin_scenario(7);
  core::OmniBoostConfig oc;
  oc.mcts.budget = 32;
  oc.mcts.seed = 11;

  core::OmniBoostScheduler direct(zoo(), embedding(), trained_estimator(),
                                  oc);
  const ServingReport plain =
      core::ServingRuntime(zoo(), board()).run(direct, s);

  ClusterConfig cc;
  cc.migrate = false;
  cc.admit_all = true;
  const Cluster cluster(zoo(), {BoardSpec{"solo", spec()}}, cc);
  const auto policy = core::make_placement_policy("least-loaded");
  const core::SchedulerFactory factory =
      [&oc](std::size_t) -> std::unique_ptr<core::IScheduler> {
    return std::make_unique<core::OmniBoostScheduler>(
        zoo(), embedding(), trained_estimator(), oc);
  };
  const ClusterReport rep = cluster.run(factory, s, *policy);
  ASSERT_EQ(rep.boards.size(), 1u);
  EXPECT_EQ(fingerprint(rep.boards[0]), fingerprint(plain));
}

TEST(ClusterInvariants, StreamConservationAcrossPoliciesAndSeeds) {
  workload::ArrivalProcess p;
  p.rate_per_s = 0.4;
  p.mean_lifetime_s = 10.0;
  p.max_concurrent = 6;
  p.slo_fraction = 0.3;

  const std::vector<BoardSpec> fleet = core::make_heterogeneous_fleet(3);
  const Cluster cluster(zoo(), fleet, ClusterConfig{});

  for (const std::string& kind : core::placement_policy_kinds()) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      util::Rng rng(util::fork_stream(seed, 0));
      const Scenario s = workload::sample_scenario(p, 40.0, rng);
      if (s.empty()) continue;
      const auto policy = core::make_placement_policy(kind);
      const ClusterReport rep =
          cluster.run(greedy_factory(cluster), s, *policy);

      std::size_t scenario_arrivals = 0, scenario_departs = 0;
      for (const ScenarioEvent& e : s.events())
        (e.kind == ScenarioEventKind::kArrive ? scenario_arrivals
                                              : scenario_departs)++;

      // Every offered arrival is admitted to exactly one board or rejected.
      EXPECT_EQ(rep.offered_streams, scenario_arrivals);
      EXPECT_EQ(rep.admitted_streams + rep.rejected_streams,
                rep.offered_streams);
      // Every scenario departure resolves: applied to the board holding the
      // stream, or swallowed because the stream was rejected at arrival.
      EXPECT_EQ(rep.departures + rep.rejected_departures, scenario_departs);

      // Per-board epoch bookkeeping reconciles with the fleet counters:
      // each admitted arrival serves one arrive epoch, each rescue
      // migration adds one arrive + one depart epoch.
      std::size_t board_arrives = 0, board_departs = 0;
      for (const ServingReport& b : rep.boards) {
        for (const core::EpochReport& ep : b.epochs) {
          if (ep.event.rfind("arrive ", 0) == 0) ++board_arrives;
          if (ep.event.rfind("depart ", 0) == 0) ++board_departs;
        }
      }
      EXPECT_EQ(board_arrives, rep.admitted_streams + rep.migrations);
      EXPECT_EQ(board_departs, rep.departures + rep.migrations);
    }
  }
}

TEST(ClusterInvariants, FleetTotalsEqualSumOfBoardReports) {
  workload::ArrivalProcess p;
  p.rate_per_s = 0.5;
  p.mean_lifetime_s = 8.0;
  p.max_concurrent = 5;
  p.slo_fraction = 0.5;
  util::Rng rng(util::fork_stream(21, 0));
  const Scenario s = workload::sample_scenario(p, 30.0, rng);
  ASSERT_FALSE(s.empty());

  const Cluster cluster(zoo(), core::make_heterogeneous_fleet(2),
                        ClusterConfig{});
  const auto policy = core::make_placement_policy("best-t");
  const ClusterReport rep = cluster.run(greedy_factory(cluster), s, *policy);

  std::size_t decisions = 0, slo_streams = 0, slo_violations = 0, evals = 0,
              hits = 0;
  double decision_s = 0.0, throughput = 0.0;
  for (const ServingReport& b : rep.boards) {
    decisions += b.decisions;
    decision_s += b.total_decision_seconds;
    throughput += b.mean_throughput;
    slo_streams += b.total_slo_streams;
    slo_violations += b.total_slo_violations;
    evals += b.total_evaluations;
    hits += b.total_cache_hits;
  }
  EXPECT_EQ(rep.decisions, decisions);
  EXPECT_DOUBLE_EQ(rep.total_decision_seconds, decision_s);
  EXPECT_DOUBLE_EQ(rep.fleet_throughput, throughput);
  EXPECT_EQ(rep.total_slo_streams, slo_streams);
  EXPECT_EQ(rep.total_slo_violations, slo_violations);
  EXPECT_EQ(rep.total_evaluations, evals);
  EXPECT_EQ(rep.total_cache_hits, hits);
}

TEST(ClusterInvariants, RepeatedRunsAreByteIdenticalForEveryPolicy) {
  workload::ArrivalProcess p;
  p.rate_per_s = 0.5;
  p.mean_lifetime_s = 10.0;
  p.max_concurrent = 5;
  p.slo_fraction = 0.3;
  util::Rng rng(util::fork_stream(31, 0));
  const Scenario s = workload::sample_scenario(p, 30.0, rng);
  ASSERT_FALSE(s.empty());

  const std::vector<BoardSpec> fleet = core::make_heterogeneous_fleet(3);
  for (const std::string& kind : core::placement_policy_kinds()) {
    const Cluster cluster(zoo(), fleet, ClusterConfig{});
    const auto policy = core::make_placement_policy(kind);
    const std::string first =
        fingerprint(cluster.run(greedy_factory(cluster), s, *policy));
    const std::string second =
        fingerprint(cluster.run(greedy_factory(cluster), s, *policy));
    EXPECT_EQ(first, second) << "policy " << kind;
    // A freshly-built identical cluster replays the same bytes too.
    const Cluster rebuilt(zoo(), fleet, ClusterConfig{});
    const auto policy2 = core::make_placement_policy(kind);
    EXPECT_EQ(first,
              fingerprint(rebuilt.run(greedy_factory(rebuilt), s, *policy2)))
        << "policy " << kind;
  }
}

TEST(ClusterAdmission, RejectsMemoryInfeasibleStreamsAndSwallowsDeparts) {
  // A board whose budget fits roughly one stream (overhead 450 MB + working
  // set) but never three: later arrivals must be rejected, and their
  // departures swallowed without touching the board.
  device::DeviceSpec tiny = device::make_hikey970();
  tiny.memory_budget_bytes = 1.1e9;
  const Cluster cluster(zoo(), {BoardSpec{"tiny", tiny}}, ClusterConfig{});

  const Scenario s = workload::parse_scenario(
      "at 0 arrive SqueezeNet\n"
      "at 1 arrive MobileNet\n"
      "at 2 arrive AlexNet\n"
      "at 3 depart MobileNet\n"
      "at 4 depart SqueezeNet\n"
      "at 5 depart AlexNet\n");
  const auto policy = core::make_placement_policy("least-loaded");
  const ClusterReport rep = cluster.run(greedy_factory(cluster), s, *policy);

  EXPECT_EQ(rep.offered_streams, 3u);
  EXPECT_GE(rep.rejected_streams, 1u);
  EXPECT_EQ(rep.admitted_streams + rep.rejected_streams, 3u);
  EXPECT_EQ(rep.rejected_departures, rep.rejected_streams);
  EXPECT_EQ(rep.departures, rep.admitted_streams);
  EXPECT_DOUBLE_EQ(
      rep.rejection_rate,
      static_cast<double>(rep.rejected_streams) / 3.0);
  // The board itself was never driven infeasible by an admitted stream.
  for (const core::EpochReport& ep : rep.boards[0].epochs)
    EXPECT_TRUE(ep.feasible) << ep.event;
}

TEST(ClusterAdmission, RejectsSloBelowTheSoloLatencyFloorEverywhere) {
  const device::CostModel cost(spec());
  const double floor_s =
      core::solo_latency_floor_s(cost, zoo().network(ModelId::kVgg19));
  ASSERT_GT(floor_s, 0.0);

  // An SLO below the floor is impossible on every board -> rejected; a
  // relaxed one admits.
  std::vector<ScenarioEvent> events;
  ScenarioEvent strict{0.0, ScenarioEventKind::kArrive, ModelId::kVgg19};
  strict.slo_ms = floor_s * 1e3 * 0.5;
  events.push_back(strict);
  ScenarioEvent leave{1.0, ScenarioEventKind::kDepart, ModelId::kVgg19};
  events.push_back(leave);
  ScenarioEvent relaxed{2.0, ScenarioEventKind::kArrive, ModelId::kVgg19};
  relaxed.slo_ms = floor_s * 1e3 * 50.0;
  events.push_back(relaxed);
  const Scenario s((std::vector<ScenarioEvent>(events)));

  const Cluster cluster(zoo(), core::make_heterogeneous_fleet(2),
                        ClusterConfig{});
  const auto policy = core::make_placement_policy("least-loaded");
  const ClusterReport rep = cluster.run(greedy_factory(cluster), s, *policy);
  EXPECT_EQ(rep.rejected_streams, 1u);
  EXPECT_EQ(rep.admitted_streams, 1u);
  EXPECT_EQ(rep.rejected_departures, 1u);
}

TEST(ClusterMigration, RescuesASaturatingArrivalAndPricesTheTransfer) {
  // Board 0 is too small for anything (admit_all bypasses admission, so the
  // arrival lands there and measures infeasible); board 1 is stock. The
  // rescue must move the stream, charge a cross-board stall, and leave the
  // stream serving on board 1 — its departure resolves there.
  device::DeviceSpec cramped = device::make_hikey970();
  cramped.memory_budget_bytes = 0.4e9;
  ClusterConfig cc;
  cc.admit_all = true;
  cc.cross_board_gbps = 1.0;
  const Cluster cluster(
      zoo(), {BoardSpec{"cramped", cramped}, BoardSpec{"stock", spec()}}, cc);

  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 5 depart AlexNet\n");
  const auto policy = core::make_placement_policy("least-loaded");
  const ClusterReport rep = cluster.run(greedy_factory(cluster), s, *policy);

  EXPECT_EQ(rep.migrations, 1u);
  const double weights =
      zoo().network(ModelId::kAlexNet).total_weight_bytes();
  EXPECT_DOUBLE_EQ(rep.cross_board_weight_bytes, weights);
  EXPECT_GT(rep.cross_board_stall_s, weights / 1e9);  // transfer + overhead
  // Board 0: arrive (infeasible) then the synthetic depart. Board 1: the
  // migrated-in arrive, then the scenario's depart.
  ASSERT_EQ(rep.boards[0].epochs.size(), 2u);
  EXPECT_FALSE(rep.boards[0].epochs[0].feasible);
  EXPECT_EQ(rep.boards[0].epochs[1].mix, "(idle)");
  ASSERT_EQ(rep.boards[1].epochs.size(), 2u);
  EXPECT_TRUE(rep.boards[1].epochs[0].feasible);
  EXPECT_EQ(rep.departures, 1u);
  // The stall starved part of the migrated stream's first epoch: its
  // measured throughput is below a stall-free replay on the same board.
  sched::GreedyScheduler direct(zoo(), spec());
  const ServingReport free_run = core::ServingRuntime(zoo(), board())
                                     .run(direct, workload::parse_scenario(
                                                      "at 0 arrive AlexNet\n"));
  EXPECT_LT(rep.boards[1].epochs[0].measured_throughput,
            free_run.epochs[0].measured_throughput);

  // A stall cap below the priced transfer suppresses the rescue.
  ClusterConfig capped = cc;
  capped.max_migration_stall_s = 1e-6;
  const Cluster no_rescue(
      zoo(), {BoardSpec{"cramped", cramped}, BoardSpec{"stock", spec()}},
      capped);
  const auto policy2 = core::make_placement_policy("least-loaded");
  const ClusterReport rep2 =
      no_rescue.run(greedy_factory(no_rescue), s, *policy2);
  EXPECT_EQ(rep2.migrations, 0u);
  EXPECT_FALSE(rep2.boards[0].epochs[0].feasible);
}

TEST(ClusterPlacement, PoliciesRouteTheFirstArrivalDifferently) {
  // Empty heterogeneous fleet: least-loaded ties to board 0 (stock);
  // best-t and memory-headroom both prefer the pro board (index 1).
  const std::vector<BoardSpec> fleet = core::make_heterogeneous_fleet(3);
  const Cluster cluster(zoo(), fleet, ClusterConfig{});
  const Scenario s = workload::parse_scenario("at 0 arrive ResNet-50\n");

  const auto first_board = [&](const std::string& kind) {
    const auto policy = core::make_placement_policy(kind);
    const ClusterReport rep =
        cluster.run(greedy_factory(cluster), s, *policy);
    for (std::size_t i = 0; i < rep.boards.size(); ++i)
      if (!rep.boards[i].epochs.empty()) return i;
    return static_cast<std::size_t>(-1);
  };
  EXPECT_EQ(first_board("least-loaded"), 0u);
  EXPECT_EQ(first_board("best-t"), 1u);
  EXPECT_EQ(first_board("memory-headroom"), 1u);
}

TEST(ClusterPlacement, PolicyFactoryValidatesKinds) {
  EXPECT_EQ(core::placement_policy_kinds().size(), 3u);
  for (const std::string& kind : core::placement_policy_kinds())
    EXPECT_EQ(core::make_placement_policy(kind)->name(), kind);
  EXPECT_THROW(core::make_placement_policy("round-robin"),
               std::invalid_argument);
  EXPECT_THROW(core::make_placement_policy(""), std::invalid_argument);
}

TEST(ClusterBounds, MemoryLowerBoundAndLatencyFloorBehave) {
  const device::CostModel cost(spec());
  const sim::NetworkList none;
  EXPECT_DOUBLE_EQ(core::board_memory_lower_bound_bytes(cost, none), 0.0);

  sim::NetworkList one{&zoo().network(ModelId::kAlexNet)};
  const double b1 = core::board_memory_lower_bound_bytes(cost, one);
  EXPECT_GT(b1, spec().per_stream_overhead_bytes);  // overhead + weights

  sim::NetworkList two = one;
  two.push_back(&zoo().network(ModelId::kVgg19));
  const double b2 = core::board_memory_lower_bound_bytes(cost, two);
  EXPECT_GT(b2, b1 + zoo().network(ModelId::kVgg19).total_weight_bytes());

  // The floor is at least the per-inference overhead plus some compute, and
  // bigger networks have higher floors.
  const double alex = core::solo_latency_floor_s(
      cost, zoo().network(ModelId::kAlexNet));
  const double vgg = core::solo_latency_floor_s(
      cost, zoo().network(ModelId::kVgg19));
  EXPECT_GT(alex, spec().per_inference_overhead_s);
  EXPECT_GT(vgg, alex);
}

TEST(ClusterConfigValidation, RejectsBadTransferAndStallCapFields) {
  const std::vector<BoardSpec> fleet = core::make_heterogeneous_fleet(1);
  const auto bad = [&](auto mutate) {
    ClusterConfig cc;
    mutate(cc);
    EXPECT_THROW(Cluster(zoo(), fleet, cc), std::invalid_argument);
  };
  bad([](ClusterConfig& cc) { cc.cross_board_gbps = 0.0; });
  bad([](ClusterConfig& cc) { cc.cross_board_gbps = -1.0; });
  bad([](ClusterConfig& cc) {
    cc.cross_board_gbps = std::numeric_limits<double>::quiet_NaN();
  });
  bad([](ClusterConfig& cc) {
    cc.cross_board_gbps = std::numeric_limits<double>::infinity();
  });
  bad([](ClusterConfig& cc) { cc.max_migration_stall_s = -0.5; });
  bad([](ClusterConfig& cc) {
    cc.max_migration_stall_s = std::numeric_limits<double>::quiet_NaN();
  });
  // The defaults themselves construct fine.
  EXPECT_NO_THROW(Cluster(zoo(), fleet, ClusterConfig{}));
}

// --- Fault tolerance ------------------------------------------------------

TEST(ClusterFaults, SingleBoardFailureFailsOverAndConserves) {
  // Three stock-ish boards, three streams placed round the fleet, then board
  // holding at least one stream fails. least-loaded routes the three
  // arrivals to boards 0,1,2 in order, so failing board 1 evacuates VGG-16.
  const Cluster cluster(zoo(), core::make_heterogeneous_fleet(3),
                        ClusterConfig{});
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 arrive VGG-16\n"
      "at 2 arrive MobileNet\n"
      "at 5 fail board 1\n"
      "at 8 depart VGG-16\n"
      "at 9 depart AlexNet\n"
      "at 10 recover board 1\n"
      "at 12 depart MobileNet\n");
  const auto policy = core::make_placement_policy("least-loaded");
  const ClusterReport rep = cluster.run(greedy_factory(cluster), s, *policy);

  EXPECT_EQ(rep.board_failures, 1u);
  EXPECT_EQ(rep.board_recoveries, 1u);
  EXPECT_EQ(rep.failovers, 1u);
  EXPECT_EQ(rep.shed_streams, 0u);  // survivors had room
  EXPECT_GT(rep.failover_stall_s, 0.0);
  EXPECT_DOUBLE_EQ(
      rep.failover_weight_bytes,
      zoo().network(ModelId::kVgg16).total_weight_bytes());
  // Downtime is exactly the fail->recover window.
  EXPECT_DOUBLE_EQ(rep.downtime_board_s, 5.0);
  // Conservation: every admitted stream departed, was shed, or is resident.
  EXPECT_EQ(rep.admitted_streams, 3u);
  EXPECT_EQ(rep.admitted_streams,
            rep.departures + rep.shed_streams + rep.resident_streams);
  EXPECT_EQ(rep.resident_streams, 0u);  // fully drained
  // The evacuated stream's departure resolved on its new board.
  EXPECT_EQ(rep.departures, 3u);
}

TEST(ClusterFaults, FailureWithNoSurvivorsShedsAndSwallowsDepartures) {
  // A 1-board fleet: failing the only board shed its resident streams; their
  // later departures are swallowed as shed, not applied or rejected.
  const Cluster cluster(zoo(), core::make_heterogeneous_fleet(1),
                        ClusterConfig{});
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 arrive MobileNet\n"
      "at 3 fail board 0\n"
      "at 5 depart AlexNet\n"
      "at 6 depart MobileNet\n");
  const auto policy = core::make_placement_policy("least-loaded");
  const ClusterReport rep = cluster.run(greedy_factory(cluster), s, *policy);
  EXPECT_EQ(rep.admitted_streams, 2u);
  EXPECT_EQ(rep.shed_streams, 2u);
  EXPECT_EQ(rep.shed_departures, 2u);
  EXPECT_EQ(rep.failovers, 0u);
  EXPECT_EQ(rep.departures, 0u);
  EXPECT_EQ(rep.rejected_departures, 0u);
  EXPECT_EQ(rep.admitted_streams,
            rep.departures + rep.shed_streams + rep.resident_streams);
  // The board stayed down through the end: downtime = horizon - fail time.
  EXPECT_DOUBLE_EQ(rep.downtime_board_s, 3.0);
  // A failed board admits nothing: a post-failure arrival is rejected.
  const Scenario s2 = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 fail board 0\n"
      "at 2 arrive MobileNet\n");
  const auto policy2 = core::make_placement_policy("least-loaded");
  const ClusterReport rep2 =
      cluster.run(greedy_factory(cluster), s2, *policy2);
  EXPECT_EQ(rep2.rejected_streams, 1u);
  EXPECT_EQ(rep2.shed_streams, 1u);
}

TEST(ClusterFaults, ThrottleDegradesThroughputUntilRecovery) {
  const Cluster cluster(zoo(), core::make_heterogeneous_fleet(1),
                        ClusterConfig{});
  const Scenario plain = workload::parse_scenario("at 0 arrive AlexNet\n");
  const Scenario throttled = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 2 throttle board 0 0.25\n"
      "at 4 recover board 0\n");
  const auto policy = core::make_placement_policy("least-loaded");
  const ClusterReport base =
      cluster.run(greedy_factory(cluster), plain, *policy);
  const auto policy2 = core::make_placement_policy("least-loaded");
  const ClusterReport rep =
      cluster.run(greedy_factory(cluster), throttled, *policy2);

  EXPECT_EQ(rep.board_throttles, 1u);
  EXPECT_EQ(rep.board_recoveries, 1u);
  EXPECT_GE(rep.degraded_epochs, 1u);
  EXPECT_EQ(rep.downtime_board_s, 0.0);  // throttled is degraded, not down
  // The board re-decided at the throttle and at recovery: three epochs, and
  // the throttled one serves at a fraction of the healthy rate.
  ASSERT_EQ(rep.boards[0].epochs.size(), 3u);
  const double healthy = base.boards[0].epochs[0].measured_throughput;
  const double degraded = rep.boards[0].epochs[1].measured_throughput;
  const double recovered = rep.boards[0].epochs[2].measured_throughput;
  EXPECT_LT(degraded, healthy * 0.5);
  EXPECT_DOUBLE_EQ(recovered, healthy);
  // Residency, not departure: the stream rides the throttle.
  EXPECT_EQ(rep.resident_streams, 1u);
  EXPECT_EQ(rep.admitted_streams,
            rep.departures + rep.shed_streams + rep.resident_streams);
}

TEST(ClusterFaults, RecoveryRebalancePullsAStreamBackWhenEnabled) {
  // Two identical boards; board 1 fails, its stream fails over to board 0
  // (which then holds 2 streams vs the recovered board's 0). With
  // rebalance_on_recovery the recovery pulls one stream back.
  const std::vector<BoardSpec> fleet = {BoardSpec{"a", spec()},
                                        BoardSpec{"b", spec()}};
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 arrive MobileNet\n"
      "at 3 fail board 1\n"
      "at 6 recover board 1\n"
      "at 10 depart AlexNet\n"
      "at 11 depart MobileNet\n");
  ClusterConfig cc;
  cc.rebalance_on_recovery = true;
  const Cluster on(zoo(), fleet, cc);
  const auto policy = core::make_placement_policy("least-loaded");
  const ClusterReport rep = on.run(greedy_factory(on), s, *policy);
  EXPECT_EQ(rep.failovers, 1u);
  EXPECT_EQ(rep.rebalances, 1u);
  EXPECT_GT(rep.rebalance_stall_s, 0.0);
  EXPECT_EQ(rep.departures, 2u);
  EXPECT_EQ(rep.admitted_streams,
            rep.departures + rep.shed_streams + rep.resident_streams);

  // Off by default: the recovered board stays empty.
  const Cluster off(zoo(), fleet, ClusterConfig{});
  const auto policy2 = core::make_placement_policy("least-loaded");
  const ClusterReport rep2 = off.run(greedy_factory(off), s, *policy2);
  EXPECT_EQ(rep2.rebalances, 0u);
  EXPECT_EQ(rep2.departures, 2u);
}

TEST(ClusterFaults, FaultScenarioSpanningMoreBoardsThanFleetIsRejected) {
  const Cluster cluster(zoo(), core::make_heterogeneous_fleet(2),
                        ClusterConfig{});
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 fail board 5\n");
  const auto policy = core::make_placement_policy("least-loaded");
  EXPECT_THROW(cluster.run(greedy_factory(cluster), s, *policy),
               std::invalid_argument);
}

TEST(ClusterFaults, FaultedRunsAreByteIdenticalAcrossReruns) {
  workload::ArrivalProcess p;
  p.rate_per_s = 0.5;
  p.mean_lifetime_s = 10.0;
  p.max_concurrent = 5;
  util::Rng rng(util::fork_stream(61, 0));
  const Scenario base = workload::sample_scenario(p, 30.0, rng);
  ASSERT_FALSE(base.empty());
  workload::FaultProcess fp;
  fp.mtbf_s = 8.0;
  fp.mttr_s = 4.0;
  fp.throttle_fraction = 0.5;
  const Scenario s = workload::with_faults(base, fp, 3, 61);
  ASSERT_TRUE(s.has_faults());

  ClusterConfig cc;
  cc.rebalance_on_recovery = true;
  const std::vector<BoardSpec> fleet = core::make_heterogeneous_fleet(3);
  const Cluster cluster(zoo(), fleet, cc);
  const auto policy = core::make_placement_policy("least-loaded");
  const std::string first =
      fingerprint(cluster.run(greedy_factory(cluster), s, *policy));
  const auto policy2 = core::make_placement_policy("least-loaded");
  EXPECT_EQ(first,
            fingerprint(cluster.run(greedy_factory(cluster), s, *policy2)));
  // And a freshly-built cluster replays the same bytes (no state leaks
  // through throttles or downed boards between runs).
  const Cluster rebuilt(zoo(), fleet, cc);
  const auto policy3 = core::make_placement_policy("least-loaded");
  EXPECT_EQ(first,
            fingerprint(rebuilt.run(greedy_factory(rebuilt), s, *policy3)));
}

TEST(ClusterConfigValidation, RejectsEmptyFleetAndNullFactory) {
  EXPECT_THROW(Cluster(zoo(), {}, ClusterConfig{}), std::invalid_argument);
  const Cluster cluster(zoo(), core::make_heterogeneous_fleet(1),
                        ClusterConfig{});
  const Scenario s = workload::parse_scenario("at 0 arrive AlexNet\n");
  const auto policy = core::make_placement_policy("least-loaded");
  EXPECT_THROW(cluster.run(core::SchedulerFactory{}, s, *policy),
               std::invalid_argument);
  EXPECT_THROW(cluster.run(greedy_factory(cluster), Scenario{}, *policy),
               std::invalid_argument);
}

}  // namespace
