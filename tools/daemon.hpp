#pragma once
/// \file daemon.hpp
/// The live serving daemon behind `omniboost_cli serve --listen <port>`.
///
/// A long-running process owning one core::ClusterSession, accepting
/// newline-delimited text commands over loopback TCP. The wire protocol IS
/// the scenario trace clause grammar (workload::parse_event_clause) — every
/// accepted command is timestamped from a util::PacedClock and appended to a
/// recorded trace, so the whole live session can be saved with `save-trace`
/// and replayed offline through core::Cluster::run. Between commands the
/// daemon runs idle-time background re-search: a wall-clock-budgeted BnB
/// refinement (sched::anytime_refine) of one board's installed mapping on a
/// util::ThreadPool, installed only if it strictly improves the incumbent
/// and no event raced in (ClusterSession::version()). See docs/SERVING.md
/// for the operator guide and the full protocol reference.
///
/// Lives in tools/ (not src/) on purpose: the daemon wires core + sched +
/// util together, an edge the src/ layering DAG forbids for library code.

#include <cstdint>

#include "core/cluster.hpp"
#include "models/zoo.hpp"

namespace omniboost::daemon {

/// Daemon knobs (`serve --listen` flags map 1:1).
struct DaemonConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port. The daemon prints
  /// `listening on <port>` on stdout either way (tests parse that line).
  std::uint16_t port = 0;
  /// Scenario seconds per real second (util::PacedClock). CI drives the
  /// daemon at 100 so a multi-minute scenario plays out in seconds.
  double time_scale = 1.0;
  /// Accept/receive poll granularity: how long (real ms) the daemon waits
  /// for network activity before taking an idle tick.
  int idle_poll_ms = 20;
  /// Wall-clock budget of one background re-search slice (BnbConfig
  /// timeout_ms). <= 0 disables background re-search entirely.
  double background_slice_ms = 25.0;
  /// Master switch for idle-time background re-search.
  bool background = true;
};

/// Runs the daemon loop until a `shutdown` command. Blocking; returns the
/// process exit code. \p cluster, \p factory, and \p policy must outlive
/// the call (the session borrows all three).
int run_daemon(const models::ModelZoo& zoo, const core::Cluster& cluster,
               const core::SchedulerFactory& factory,
               core::IPlacementPolicy& policy, const DaemonConfig& config);

}  // namespace omniboost::daemon
