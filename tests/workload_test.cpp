// Workload and mix generation.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost::workload;
using omniboost::models::kNumModels;
using omniboost::models::ModelId;
using omniboost::models::ModelZoo;
using omniboost::util::Rng;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

TEST(Workload, ResolveReturnsBorrowedNetworks) {
  const Workload w{{ModelId::kAlexNet, ModelId::kVgg19}};
  const auto nets = w.resolve(zoo());
  ASSERT_EQ(nets.size(), 2u);
  EXPECT_EQ(nets[0], &zoo().network(ModelId::kAlexNet));
  EXPECT_EQ(nets[1], &zoo().network(ModelId::kVgg19));
}

TEST(Workload, LayerCounts) {
  const Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const auto counts = w.layer_counts(zoo());
  EXPECT_EQ(counts,
            (std::vector<std::size_t>{
                zoo().network(ModelId::kAlexNet).num_layers(),
                zoo().network(ModelId::kMobileNet).num_layers()}));
}

TEST(Workload, DescribeJoinsNames) {
  const Workload w{{ModelId::kVgg13, ModelId::kSqueezeNet}};
  EXPECT_EQ(w.describe(), "VGG-13+SqueezeNet");
}

TEST(Workload, ResolveEmptyThrows) {
  EXPECT_THROW(Workload{}.resolve(zoo()), std::invalid_argument);
}

TEST(RandomMix, ProducesDistinctModels) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = 1 + rng.below(5);
    const Workload w = random_mix(rng, n);
    EXPECT_EQ(w.size(), n);
    std::set<ModelId> unique(w.mix.begin(), w.mix.end());
    EXPECT_EQ(unique.size(), n);
  }
}

TEST(RandomMix, BoundsChecked) {
  Rng rng(2);
  EXPECT_THROW(random_mix(rng, 0), std::invalid_argument);
  EXPECT_THROW(random_mix(rng, kNumModels + 1), std::invalid_argument);
  EXPECT_EQ(random_mix(rng, kNumModels).size(), kNumModels);
}

TEST(RandomMix, EveryModelEventuallyAppears) {
  Rng rng(3);
  std::set<ModelId> seen;
  for (int i = 0; i < 200; ++i) {
    for (ModelId id : random_mix(rng, 3).mix) seen.insert(id);
  }
  EXPECT_EQ(seen.size(), kNumModels);
}

TEST(RandomMix, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(random_mix(a, 4).mix, random_mix(b, 4).mix);
}

TEST(RandomMapping, MatchesWorkloadArity) {
  Rng rng(4);
  const Workload w = random_mix(rng, 4);
  const auto m = random_mapping(rng, zoo(), w, 3);
  EXPECT_EQ(m.num_dnns(), 4u);
  const auto counts = w.layer_counts(zoo());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.assignment(i).size(), counts[i]);
    EXPECT_LE(m.stages(i), 3u);
  }
}

TEST(RandomAssignment, SingleLayerIsOneStage) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto a = random_assignment(rng, 1, 3);
    EXPECT_EQ(a.size(), 1u);
  }
}

TEST(RandomAssignment, InvalidArgsThrow) {
  Rng rng(6);
  EXPECT_THROW(random_assignment(rng, 0, 3), std::invalid_argument);
  EXPECT_THROW(random_assignment(rng, 5, 0), std::invalid_argument);
}

TEST(RandomAssignment, UsesAllComponentsEventually) {
  Rng rng(7);
  std::set<omniboost::sim::ComponentId> seen;
  for (int i = 0; i < 100; ++i)
    for (auto c : random_assignment(rng, 10, 3)) seen.insert(c);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(TwoWaySplit, InvalidArgsThrow) {
  Rng rng(8);
  EXPECT_THROW(random_two_way_split(rng, 0, omniboost::sim::ComponentId::kGpu,
                                    omniboost::sim::ComponentId::kBigCpu),
               std::invalid_argument);
}

}  // namespace
