#include "core/omniboost.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "sim/des.hpp"
#include "sim/migration.hpp"
#include "util/require.hpp"

namespace omniboost::core {

namespace {

/// Wall-clock helper.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// IEEE-754 bit pattern of a double — the replay-memo key fingerprints
/// delays/throttle through this so hashing and equality agree on every
/// value (raw doubles would hash 0.0 and -0.0 apart yet compare equal).
std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

OmniBoostScheduler::OmniBoostScheduler(
    const models::ModelZoo& zoo, const EmbeddingTensor& embedding,
    std::shared_ptr<const ThroughputEstimator> estimator,
    const OmniBoostConfig& config)
    : zoo_(&zoo),
      embedding_(&embedding),
      estimator_(std::move(estimator)),
      config_(config) {
  OB_REQUIRE(estimator_ != nullptr, "OmniBoostScheduler: null estimator");
  OB_REQUIRE(estimator_->trained(),
             "OmniBoostScheduler: estimator must be trained first");
}

std::shared_ptr<const ThroughputEstimator>
OmniBoostScheduler::active_estimator() const {
  // Kernel selection: the shared estimator is immutable, so a non-matching
  // kernel request is served by a private clone (serialization round-trip —
  // bit-exact weights and preprocessing, ~20k parameters, microseconds).
  if (estimator_->kernel() == config_.kernel) return estimator_;
  std::stringstream weights;
  estimator_->save(weights);
  std::istringstream is(weights.str());
  auto clone =
      std::make_shared<ThroughputEstimator>(ThroughputEstimator::load(is));
  clone->set_kernel(config_.kernel);
  return clone;
}

BatchMappingEvaluator OmniBoostScheduler::batch_evaluator(
    const workload::Workload& w,
    std::shared_ptr<const ThroughputEstimator> est) const {
  return [this, &w, est = std::move(est)](
             const std::vector<sim::Mapping>& mappings) {
    std::vector<tensor::Tensor> inputs;
    inputs.reserve(mappings.size());
    for (const sim::Mapping& m : mappings)
      inputs.push_back(embedding_->masked_input(w, m));
    return est->predict_rewards(inputs);
  };
}

MctsConfig OmniBoostScheduler::make_mcts_config() const {
  // The scheduler-level batching/caching knobs ride on the generic search
  // config; OmniBoostConfig is the authoritative surface for both. Reject
  // values smuggled in through the sub-config instead of silently
  // overwriting them.
  OB_REQUIRE(config_.mcts.batch_size == 1 && config_.mcts.cache,
             "OmniBoostScheduler: set batch_size/cache on OmniBoostConfig "
             "itself, not on its mcts sub-config");
  MctsConfig mcts = config_.mcts;
  mcts.batch_size = config_.batch_size;
  mcts.cache = config_.cache;
  return mcts;
}

ScheduleResult OmniBoostScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "OmniBoostScheduler::schedule: empty workload");
  const StopWatch timer;
  const MctsConfig mcts = make_mcts_config();
  const std::shared_ptr<const ThroughputEstimator> active = active_estimator();

  MctsResult r;
  if (config_.workers <= 1) {
    Mcts search(w.layer_counts(*zoo_), batch_evaluator(w, active), mcts);
    r = search.search();
  } else {
    // Root-parallel: the CNN forward pass mutates activation caches, so each
    // worker needs a private estimator. Clone through the serialization path
    // (bit-exact weights and preprocessing; ~20k parameters, microseconds),
    // stamping the configured kernel kind onto every clone.
    std::stringstream weights;
    active->save(weights);
    const std::string blob = weights.str();
    const nn::KernelKind kernel = config_.kernel;
    const BatchEvaluatorFactory factory = [this, &w, blob,
                                           kernel]() -> BatchMappingEvaluator {
      std::istringstream is(blob);
      auto clone =
          std::make_shared<ThroughputEstimator>(ThroughputEstimator::load(is));
      clone->set_kernel(kernel);
      return batch_evaluator(w, std::move(clone));
    };
    r = parallel_mcts_search_batched(w.layer_counts(*zoo_), factory, mcts,
                                     config_.workers);
  }

  ScheduleResult out;
  out.mapping = r.best_mapping;
  out.expected_reward = r.best_reward;
  out.evaluations = r.evaluations;
  out.cache_hits = r.cache_hits;
  out.decision_seconds = timer.seconds();
  return out;
}

ScheduleResult OmniBoostScheduler::reschedule(const workload::Workload& w,
                                              const sim::Mapping& previous,
                                              const ScheduleContext& ctx) {
  if (!ctx.warm_start) return schedule(w);
  OB_REQUIRE(w.size() > 0, "OmniBoostScheduler::reschedule: empty workload");
  OB_REQUIRE(ctx.carried_from.size() == w.size(),
             "OmniBoostScheduler::reschedule: carried_from arity mismatch");
  OB_REQUIRE(config_.rollout_fraction > 0.0 && config_.rollout_fraction <= 1.0,
             "OmniBoostScheduler: rollout_fraction must be in (0, 1]");
  const StopWatch timer;

  // Incremental budget: a fraction of the cold budget, never below 1.
  MctsConfig mcts = make_mcts_config();
  mcts.budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config_.rollout_fraction *
                          static_cast<double>(mcts.budget))));

  // Prior: flatten the surviving streams' previous assignments into the
  // search's decision order (dnn-after-dnn, layer-after-layer); layers of
  // newly arrived streams carry no suggestion.
  const std::vector<std::size_t> counts = w.layer_counts(*zoo_);
  MctsWarmStart warm;
  warm.prior_bias = config_.prior_bias;
  for (std::size_t d = 0; d < w.size(); ++d) {
    const std::ptrdiff_t from = ctx.carried_from[d];
    if (from < 0) {
      warm.prior.insert(warm.prior.end(), counts[d], std::int8_t{-1});
      continue;
    }
    OB_REQUIRE(static_cast<std::size_t>(from) < previous.num_dnns(),
               "OmniBoostScheduler::reschedule: carried_from out of range");
    const sim::Assignment& a =
        previous.assignment(static_cast<std::size_t>(from));
    OB_REQUIRE(a.size() == counts[d],
               "OmniBoostScheduler::reschedule: carried stream layer-count "
               "mismatch (carried_from must pair identical models)");
    for (const device::ComponentId c : a)
      warm.prior.push_back(static_cast<std::int8_t>(c));
  }

  // SLO awareness: active only when the context names at least one SLO AND
  // brings the board model to replay candidates on. Without both, the
  // evaluator below is exactly the pre-SLO one — same closures, same rng
  // consumption — so SLO-free serving stays bit-identical.
  OB_REQUIRE(ctx.slo_s.empty() || ctx.slo_s.size() == w.size(),
             "OmniBoostScheduler::reschedule: slo_s arity mismatch");
  const bool slo_aware =
      ctx.board != nullptr &&
      std::any_of(ctx.slo_s.begin(), ctx.slo_s.end(),
                  [](double s) { return s > 0.0; });

  // Mix signature: keys both the carried evaluation memos and the replay
  // memos below.
  std::string signature;
  for (const models::ModelId id : w.mix) {
    signature += std::to_string(models::model_index(id));
    signature += ',';
  }

  // Candidate nets for the SLO replays, resolved ONCE per decision at
  // function scope. The resolution depends only on the workload; rebuilding
  // it inside the replay closure would redo the zoo lookups for every
  // expansion wave of the search.
  sim::NetworkList slo_nets;

  // Replay accounting: {executed DES replays, memo hits}. Shared with the
  // wrapper closure so the counts survive the evaluator handoff into Mcts.
  const auto replay_stats =
      std::make_shared<std::pair<std::size_t, std::size_t>>();

  BatchMappingEvaluator evaluator = batch_evaluator(w, active_estimator());
  if (slo_aware) {
    OB_REQUIRE(config_.slo_shape > 0.0 && config_.slo_shape <= 1.0,
               "OmniBoostScheduler: slo_shape must be in (0, 1]");
    slo_nets = w.resolve(*zoo_);

    // Replay memo: a DES replay trace is a pure function of (mix, mapping,
    // start delays, board throttle) — the SLO vector only interprets the
    // trace, and violations are recomputed below from the CURRENT slo — so
    // traces memoized under that key replay bit-exactly across decisions on
    // the same mix. The fresh-per-reschedule Mcts replays its fixed rollout
    // seed, so a repeated warm decision re-proposes the same candidates and
    // answers them from here. Validity: the key assumes one board and one
    // SLO contract; drop everything when either moves (set_config() also
    // clears).
    ReplayMemo* memo = nullptr;
    if (config_.replay_memo) {
      if (replay_board_ != ctx.board || replay_slo_ != ctx.slo_s) {
        replay_memos_.clear();
        replay_board_ = ctx.board;
        replay_slo_ = ctx.slo_s;
      }
      ReplayMemo& slot = replay_memos_[signature];
      slot.last_used = ++memo_clock_;
      memo = &slot;
    }

    // Wrap the estimator evaluator: DES-replay each candidate and shape
    // down / hard-prune SLO breakers. A stream that serves no frame inside
    // the window counts as violating: "no sample" or "zero rate" means
    // starved, not fast. Migration stalls enter the replay through the
    // zero-rate rule only — a one-off stall cannot change per-frame latency
    // (the stream is simply absent for the first window slice, see the DES
    // start-delay contract), so a candidate whose own churn would starve an
    // SLO stream for the whole window is rejected here, while cheaper
    // stalls are priced by the runtime's measured T, not the SLO check.
    evaluator = [base = std::move(evaluator), board = ctx.board,
                 migration = ctx.migration, &nets = slo_nets,
                 slo = ctx.slo_s, previous, carried = ctx.carried_from,
                 shape = config_.slo_shape, hard = config_.slo_hard_prune,
                 memo, stats = replay_stats](
                    const std::vector<sim::Mapping>& mappings) {
      std::vector<double> rewards = base(mappings);
      const std::uint64_t throttle_bits = double_bits(board->throttle());
      for (std::size_t i = 0; i < mappings.size(); ++i) {
        std::vector<double> delays;
        if (migration != nullptr && migration->enabled())
          delays = migration->assess(nets, previous, carried, mappings[i])
                       .stream_delay_s;
        // Serve the replay from the memo when possible; memoized traces are
        // the exact TracedResult doubles of the original run, so the shaped
        // rewards below are bit-identical memo-on vs memo-off.
        const sim::DesSimulator::TracedResult* replay = nullptr;
        sim::DesSimulator::TracedResult fresh;
        if (memo != nullptr) {
          ReplayKey key;
          key.mapping = mappings[i];
          key.throttle_bits = throttle_bits;
          key.delay_bits.reserve(delays.size());
          for (const double d : delays) key.delay_bits.push_back(double_bits(d));
          const auto it = memo->entries.find(key);
          if (it != memo->entries.end()) {
            ++stats->second;  // memo hit
            replay = &it->second;
          } else {
            ++stats->first;  // executed replay
            const auto ins = memo->entries.emplace(
                std::move(key),
                board->simulate_traced(nets, mappings[i], delays));
            replay = &ins.first->second;
          }
        } else {
          ++stats->first;
          fresh = board->simulate_traced(nets, mappings[i], delays);
          replay = &fresh;
        }
        std::size_t violations = 0;
        for (std::size_t d = 0; d < slo.size(); ++d) {
          // sim::breaks_slo is the SAME predicate the serving runtime
          // counts violations with — the search must never optimize a
          // different definition of "violating" than the one it is
          // measured against.
          if (sim::breaks_slo(replay->report, replay->trace, d, slo[d]))
            ++violations;
        }
        if (violations == 0) continue;
        if (hard) {
          // Demote below every SLO-clean candidate regardless of the
          // estimator's reward sign; more violations sink deeper, which
          // keeps the ranking meaningful when every candidate violates.
          // The unit is sized to dominate the estimator's flow-scale
          // rewards (O(1e2) at most) WITHOUT exploding the search's
          // min-max-normalized reward range — a huge offset would collapse
          // all clean candidates' exploit terms to one point and degrade
          // the tree policy to exploration-only.
          rewards[i] =
              std::min(rewards[i], 0.0) - 1e4 * static_cast<double>(violations);
        } else {
          // Symmetric shaping so the demotion works in both reward-sign
          // regimes: shrink positive rewards toward zero, push negative
          // ones further down (dividing by shape < 1 grows the magnitude).
          const double factor = std::pow(shape, static_cast<double>(violations));
          rewards[i] = rewards[i] > 0.0 ? rewards[i] * factor
                                        : rewards[i] / factor;
        }
      }
      return rewards;
    };
  }

  // Memo carry-over: estimator rewards are a pure function of
  // (workload, mapping), so the memo is keyed by the mix signature and
  // revived whenever the scenario returns to a mix it has scheduled before.
  // SLO-shaped rewards additionally depend on the previous mapping and the
  // epoch's SLOs, so SLO-aware decisions bypass the carried memos entirely
  // (private per-decision memo) rather than poison them — the replay memo
  // above carries the SLO-independent DES traces instead.
  const bool carry_memo = config_.cache && !slo_aware;
  if (carry_memo) {
    CarriedMemo& carried = carried_memos_[signature];
    carried.last_used = ++memo_clock_;
    warm.memo = &carried.memo;
  }

  // Single tree on purpose: the incremental budget is already small, and
  // root-parallel trees cannot share the carried memo (the private-memo
  // rule of the parallel search).
  Mcts search(counts, std::move(evaluator), mcts);
  search.set_warm_start(std::move(warm));
  const MctsResult r = search.search();
  if (carry_memo) evict_carried_memos(signature);
  if (slo_aware && config_.replay_memo) evict_replay_memos(signature);

  ScheduleResult out;
  out.mapping = r.best_mapping;
  out.expected_reward = r.best_reward;
  out.evaluations = r.evaluations;
  out.cache_hits = r.cache_hits;
  out.des_replays = replay_stats->first;
  out.replay_hits = replay_stats->second;
  out.decision_seconds = timer.seconds();
  return out;
}

std::size_t OmniBoostScheduler::carried_memo_footprint() const {
  std::size_t entries = 0;
  for (const auto& [signature, carried] : carried_memos_) {
    (void)signature;
    entries += carried.memo.size();
  }
  return entries;
}

std::size_t OmniBoostScheduler::replay_memo_footprint() const {
  std::size_t entries = 0;
  for (const auto& [signature, memo] : replay_memos_) {
    (void)signature;
    entries += memo.entries.size();
  }
  return entries;
}

void OmniBoostScheduler::evict_replay_memos(const std::string& keep) {
  if (config_.replay_memo_entries == 0) return;  // unbounded
  // Same policy as evict_carried_memos: drop whole least-recently-used
  // mixes' memos, never the mix just rescheduled.
  while (replay_memo_footprint() > config_.replay_memo_entries &&
         replay_memos_.size() > 1) {
    auto victim = replay_memos_.end();
    for (auto it = replay_memos_.begin(); it != replay_memos_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == replay_memos_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == replay_memos_.end()) break;
    replay_memos_.erase(victim);
  }
}

void OmniBoostScheduler::evict_carried_memos(const std::string& keep) {
  if (config_.carried_memo_entries == 0) return;  // unbounded
  // Long serving sessions touch many mixes; bound the retained footprint by
  // dropping whole least-recently-rescheduled memos. The just-used mix is
  // never dropped, so a single busy mix may exceed the cap by itself — its
  // memo is bounded by the distinct mappings the shrunken warm budget can
  // reach, and dropping it would only forfeit the carry-over benefit.
  while (carried_memo_footprint() > config_.carried_memo_entries &&
         carried_memos_.size() > 1) {
    auto victim = carried_memos_.end();
    for (auto it = carried_memos_.begin(); it != carried_memos_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == carried_memos_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == carried_memos_.end()) break;
    carried_memos_.erase(victim);
  }
}

MctsScheduler::MctsScheduler(std::string name, const models::ModelZoo& zoo,
                             MappingEvaluator evaluator, MctsConfig config)
    : name_(std::move(name)),
      zoo_(&zoo),
      evaluator_(std::move(evaluator)),
      config_(config) {
  OB_REQUIRE(evaluator_ != nullptr, "MctsScheduler: null evaluator");
}

ScheduleResult MctsScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "MctsScheduler::schedule: empty workload");
  const StopWatch timer;
  Mcts search(w.layer_counts(*zoo_), evaluator_, config_);
  const MctsResult r = search.search();

  ScheduleResult out;
  out.mapping = r.best_mapping;
  out.expected_reward = r.best_reward;
  out.evaluations = r.evaluations;
  out.cache_hits = r.cache_hits;
  out.decision_seconds = timer.seconds();
  return out;
}

}  // namespace omniboost::core
