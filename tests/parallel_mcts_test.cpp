// Root-parallelized MCTS: budget splitting, seed forking, estimator
// cloning, and determinism regardless of thread scheduling.

#include <gtest/gtest.h>

#include <memory>

#include "core/dataset.hpp"
#include "sched/search_common.hpp"
#include "core/omniboost.hpp"
#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "sim/analytic.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

std::shared_ptr<const sim::AnalyticModel> analytic() {
  static const auto model =
      std::make_shared<const sim::AnalyticModel>(device::make_hikey970());
  return model;
}

/// Thread-safe oracle factory (AnalyticModel::evaluate is const and pure).
core::EvaluatorFactory oracle_factory(const Workload& w) {
  const sim::NetworkList nets = w.resolve(zoo());
  return [nets]() -> core::MappingEvaluator {
    return [nets](const sim::Mapping& m) {
      return analytic()->evaluate(nets, m).avg_throughput;
    };
  };
}

TEST(ParallelMcts, SingleWorkerMatchesSequentialSearch) {
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  core::MctsConfig cfg;
  cfg.budget = 120;
  cfg.seed = 9;

  const auto factory = oracle_factory(w);
  const core::MctsResult parallel =
      core::parallel_mcts_search(w.layer_counts(zoo()), factory, cfg, 1);

  core::Mcts sequential(w.layer_counts(zoo()), factory(), cfg);
  const core::MctsResult plain = sequential.search();

  EXPECT_EQ(parallel.best_mapping, plain.best_mapping);
  EXPECT_DOUBLE_EQ(parallel.best_reward, plain.best_reward);
  EXPECT_EQ(parallel.evaluations, plain.evaluations);
  EXPECT_EQ(parallel.cache_hits, plain.cache_hits);
}

TEST(ParallelMcts, BudgetSplitsExactlyAcrossWorkers) {
  const Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  core::MctsConfig cfg;
  cfg.budget = 103;  // deliberately not divisible by 4
  const auto r = core::parallel_mcts_search(w.layer_counts(zoo()),
                                            oracle_factory(w), cfg, 4);
  EXPECT_EQ(r.evaluations + r.cache_hits, 103u);
  EXPECT_EQ(r.iterations, 103u);
  EXPECT_TRUE(r.best_mapping.within_stage_limit(3));
}

TEST(ParallelMcts, DeterministicAcrossRuns) {
  const Workload w{{ModelId::kVgg16, ModelId::kAlexNet}};
  core::MctsConfig cfg;
  cfg.budget = 160;
  cfg.seed = 77;
  const auto a = core::parallel_mcts_search(w.layer_counts(zoo()),
                                            oracle_factory(w), cfg, 4);
  const auto b = core::parallel_mcts_search(w.layer_counts(zoo()),
                                            oracle_factory(w), cfg, 4);
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_DOUBLE_EQ(a.best_reward, b.best_reward);
}

TEST(ParallelMcts, MergedRewardIsBestOfWorkers) {
  // Re-evaluating the returned mapping must reproduce the merged reward
  // (the merge picks a worker's argmax, it never fabricates a value).
  const Workload w{{ModelId::kResNet34, ModelId::kSqueezeNet}};
  core::MctsConfig cfg;
  cfg.budget = 140;
  const auto r = core::parallel_mcts_search(w.layer_counts(zoo()),
                                            oracle_factory(w), cfg, 4);
  const double measured =
      analytic()->evaluate(w.resolve(zoo()), r.best_mapping).avg_throughput;
  EXPECT_NEAR(r.best_reward, measured, 1e-9);
}

TEST(ParallelMcts, RejectsDegenerateConfigs) {
  const Workload w{{ModelId::kAlexNet}};
  core::MctsConfig cfg;
  cfg.budget = 2;
  EXPECT_THROW(core::parallel_mcts_search(w.layer_counts(zoo()),
                                          oracle_factory(w), cfg, 0),
               std::invalid_argument);
  EXPECT_THROW(core::parallel_mcts_search(w.layer_counts(zoo()),
                                          oracle_factory(w), cfg, 4),
               std::invalid_argument);  // budget < workers
  EXPECT_THROW(core::parallel_mcts_search(w.layer_counts(zoo()), nullptr, cfg,
                                          1),
               std::invalid_argument);
}

TEST(ParallelMcts, WorkerErrorsPropagate) {
  const Workload w{{ModelId::kAlexNet}};
  core::MctsConfig cfg;
  cfg.budget = 40;
  const core::EvaluatorFactory throwing = []() -> core::MappingEvaluator {
    return [](const sim::Mapping&) -> double {
      throw std::runtime_error("evaluator exploded");
    };
  };
  EXPECT_THROW(
      core::parallel_mcts_search(w.layer_counts(zoo()), throwing, cfg, 4),
      std::runtime_error);
}

TEST(ParallelMcts, OmniBoostSchedulerEndToEnd) {
  // Full production path: trained estimator, cloned per worker through the
  // serialization path; the parallel decision must be valid, deterministic,
  // and use the full budget.
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo(), cost);
  const sim::DesSimulator board(spec);

  core::DatasetConfig dc;
  dc.samples = 60;
  const core::SampleSet data =
      core::generate_dataset(zoo(), embedding, board, dc);
  auto est = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 4;
  est->fit(data, 10, l1, tc);

  core::OmniBoostConfig cfg;
  cfg.mcts.budget = 200;
  cfg.workers = 4;
  core::OmniBoostScheduler sched(zoo(), embedding, est, cfg);

  const Workload w{{ModelId::kVgg16, ModelId::kAlexNet, ModelId::kMobileNet}};
  const auto a = sched.schedule(w);
  const auto b = sched.schedule(w);
  EXPECT_EQ(a.evaluations + a.cache_hits, 200u);
  EXPECT_TRUE(a.mapping.within_stage_limit(3));
  EXPECT_EQ(a.mapping, b.mapping) << "parallel decision not deterministic";

  // Same budget, one worker: same machinery, different tree shape — both
  // must return valid mappings scored by the same estimator.
  core::OmniBoostConfig seq = cfg;
  seq.workers = 1;
  core::OmniBoostScheduler sseq(zoo(), embedding, est, seq);
  const auto c = sseq.schedule(w);
  EXPECT_TRUE(c.mapping.within_stage_limit(3));
}

TEST(EnsembleEvaluator, MeanOfMembersAndValidation) {
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo(), cost);
  const sim::DesSimulator board(spec);

  core::DatasetConfig dc;
  dc.samples = 50;
  const core::SampleSet data =
      core::generate_dataset(zoo(), embedding, board, dc);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 3;

  std::vector<std::shared_ptr<const core::ThroughputEstimator>> members;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    core::EstimatorConfig ec;
    ec.init_seed = seed;
    auto est = std::make_shared<core::ThroughputEstimator>(
        embedding.models_dim(), embedding.layers_dim(), ec);
    est->fit(data, 10, l1, tc);
    members.push_back(std::move(est));
  }

  const auto factory =
      sched::ensemble_evaluator_factory(zoo(), embedding, members);
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  const auto evaluate = factory(w);

  util::Rng rng(5);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const tensor::Tensor input = embedding.masked_input(w, m);
  double expected = 0.0;
  for (const auto& est : members) expected += est->predict_reward(input);
  expected /= 3.0;
  EXPECT_NEAR(evaluate(m), expected, 1e-12);

  // Members genuinely disagree (different inits), so the mean is a real
  // aggregation, not a triple of identical values.
  EXPECT_NE(members[0]->predict_reward(input),
            members[1]->predict_reward(input));

  // Validation: empty ensembles and untrained members are rejected.
  EXPECT_THROW(sched::ensemble_evaluator_factory(zoo(), embedding, {}),
               std::invalid_argument);
  auto untrained = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  EXPECT_THROW(
      sched::ensemble_evaluator_factory(zoo(), embedding, {untrained}),
      std::invalid_argument);
}

}  // namespace
