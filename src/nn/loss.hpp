#pragma once
/// \file loss.hpp
/// Regression losses. The paper trains the throughput estimator with L1 loss
/// ("L2 proved too aggressive"); both are provided so the ablation bench can
/// reproduce that comparison.

#include <utility>

#include "tensor/tensor.hpp"

namespace omniboost::nn {

/// Loss value plus gradient w.r.t. the predictions.
struct LossResult {
  float value = 0.0f;
  tensor::Tensor grad;  ///< same shape as predictions
};

/// Interface for element-wise regression criteria (mean-reduced).
class Loss {
 public:
  virtual ~Loss() = default;

  /// Computes mean loss over all elements and its gradient.
  /// Shapes of \p pred and \p target must match.
  virtual LossResult compute(const tensor::Tensor& pred,
                             const tensor::Tensor& target) const = 0;
};

/// Mean absolute error (the paper's training criterion).
class L1Loss final : public Loss {
 public:
  LossResult compute(const tensor::Tensor& pred,
                     const tensor::Tensor& target) const override;
};

/// Mean squared error (used by the L1-vs-L2 ablation).
class MSELoss final : public Loss {
 public:
  LossResult compute(const tensor::Tensor& pred,
                     const tensor::Tensor& target) const override;
};

/// Huber / smooth-L1: quadratic within |d| <= delta, linear outside.
/// Interpolates between the paper's L1 choice and the "too aggressive" L2 —
/// the training ablation sweeps delta to chart that trade-off.
class HuberLoss final : public Loss {
 public:
  explicit HuberLoss(float delta = 1.0f);

  LossResult compute(const tensor::Tensor& pred,
                     const tensor::Tensor& target) const override;

  float delta() const { return delta_; }

 private:
  float delta_;
};

}  // namespace omniboost::nn
