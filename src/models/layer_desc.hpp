#pragma once
/// \file layer_desc.hpp
/// Static descriptions of DNN layers at the granularity OmniBoost schedules:
/// one *schedulable layer* per partitionable unit, each decomposed into the
/// compute-library kernels it would launch (Eq. 1 of the paper sums per-kernel
/// execution times into the layer cost B_l_alpha).

#include <cstddef>
#include <string>
#include <vector>

namespace omniboost::models {

/// Feature-map dimensions (channels, height, width) of an activation tensor.
struct Dims {
  std::size_t c = 0, h = 0, w = 0;

  std::size_t count() const { return c * h * w; }
  /// Size in bytes assuming fp32 activations (ARM-CL default precision).
  double bytes() const { return 4.0 * static_cast<double>(count()); }
  bool operator==(const Dims& rhs) const {
    return c == rhs.c && h == rhs.h && w == rhs.w;
  }
  bool operator!=(const Dims& rhs) const { return !(*this == rhs); }
};

/// The kernel types an ARM-CL-style backend launches for one layer.
enum class KernelKind {
  kIm2col,        ///< patch-matrix materialization before GEMM convolution
  kGemm,          ///< matrix multiply (conv core / fully connected)
  kDirectConv,    ///< direct convolution (small kernels)
  kDepthwiseConv, ///< per-channel convolution (MobileNet)
  kBias,          ///< bias addition
  kActivation,    ///< ReLU and friends
  kPool,          ///< max/avg pooling
  kNorm,          ///< LRN / batch-norm folding
  kEltwiseAdd,    ///< residual addition
  kConcat,        ///< channel concatenation (Inception / Fire expand)
  kSoftmax,       ///< classifier head
};

/// One kernel launch: its arithmetic and memory footprint.
struct KernelDesc {
  KernelKind kind = KernelKind::kGemm;
  double flops = 0.0;        ///< floating-point operations (2x MACs)
  double bytes = 0.0;        ///< DRAM traffic estimate: reads + writes
};

/// Broad layer category; drives per-component efficiency in the cost model.
enum class LayerKind {
  kConv,           ///< standard convolution (GEMM-dominated)
  kDepthwiseConv,  ///< depthwise separable part (poor GPU efficiency)
  kFullyConnected, ///< dense layer (memory-bound)
  kPool,           ///< pooling (memory-bound)
  kResidualBlock,  ///< fused basic/bottleneck residual block
  kInceptionBlock, ///< fused multi-branch inception module
  kFire,           ///< SqueezeNet squeeze or expand stage
};

/// One schedulable layer (the unit MCTS assigns to a computing component).
struct LayerDesc {
  std::string name;          ///< e.g. "conv3_2", "res4b12"
  LayerKind kind = LayerKind::kConv;
  Dims input;                ///< activation entering the layer
  Dims output;               ///< activation leaving the layer
  double weight_bytes = 0.0; ///< parameter footprint (fp32)
  std::vector<KernelDesc> kernels;

  /// Sum of kernel FLOPs.
  double flops() const;
  /// Sum of kernel DRAM traffic.
  double traffic_bytes() const;
  /// Activation bytes produced (what a pipeline cut here must transfer).
  double output_bytes() const { return output.bytes(); }
};

/// A full network: ordered schedulable layers plus metadata.
struct NetworkDesc {
  std::string name;
  Dims input;                 ///< network input (e.g. 3x224x224)
  std::vector<LayerDesc> layers;

  std::size_t num_layers() const { return layers.size(); }
  double total_flops() const;
  double total_weight_bytes() const;
  /// Peak single-layer activation output in bytes.
  double max_activation_bytes() const;
};

}  // namespace omniboost::models
