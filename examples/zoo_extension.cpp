/// \file zoo_extension.cpp
/// The paper's extensibility claim ((iii): "OmniBoost is designed to be
/// robust to new DNN models added on top of the existing dataset") as a
/// working pipeline: append a custom network to the 11-model dataset,
/// rebuild the distributed-embeddings tensor from the extended catalog,
/// retrain the estimator (seconds — the kernel-granular profile does the
/// heavy lifting), and schedule a mix containing the new model with the
/// same MCTS machinery.

#include <cstdio>
#include <memory>

#include "core/dataset.hpp"
#include "core/estimator.hpp"
#include "core/mcts.hpp"
#include "models/net_builder.hpp"
#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "sim/des.hpp"

using namespace omniboost;

namespace {

/// The newcomer: a compact detector backbone (same as custom_model.cpp).
models::NetworkDesc make_tinydet() {
  models::NetBuilder b("TinyDet", {3, 224, 224});
  b.conv(24, 3, 2, 1, "stem");
  b.depthwise(1, "dw1").pointwise(48, "pw1");
  b.maxpool(2, 2, 0, "pool1");
  b.depthwise(1, "dw2").pointwise(96, "pw2");
  b.maxpool(2, 2, 0, "pool2");
  b.conv(128, 3, 1, 1, "conv3");
  b.residual_basic(128, 1, "res3");
  b.maxpool(2, 2, 0, "pool3");
  b.conv(192, 3, 1, 1, "conv4");
  b.residual_basic(192, 2, "res4");
  b.global_avgpool("gap");
  b.fc(80, true, "head");
  return std::move(b).build();
}

}  // namespace

int main() {
  // 1. Extend the catalog: the 11 dataset models plus TinyDet (column 11).
  const models::ModelZoo zoo;
  const models::NetworkDesc tinydet = make_tinydet();
  sim::NetworkList catalog;
  for (const models::NetworkDesc& net : zoo.networks())
    catalog.push_back(&net);
  catalog.push_back(&tinydet);
  const std::size_t tinydet_col = catalog.size() - 1;
  std::printf("catalog: %zu models (11 dataset + %s)\n", catalog.size(),
              tinydet.name.c_str());

  // 2. Re-profile: the embedding tensor grows one column.
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(catalog, cost);
  std::printf("extended embedding tensor: 3 x %zu x %zu\n",
              embedding.models_dim(), embedding.layers_dim());

  // 3. Retrain on the extended catalog (abbreviated campaign).
  const sim::DesSimulator board(spec);
  core::DatasetConfig dc;
  dc.samples = 150;
  const core::SampleSet data =
      core::generate_dataset(catalog, embedding, board, dc);
  auto estimator = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 40;
  const auto hist = estimator->fit(data, 30, l1, tc);
  std::printf("retrained estimator: val L1 %.4f\n\n", hist.val_loss.back());

  // 4. Schedule a mix that includes the newcomer: TinyDet + two dataset
  //    models, via the generic (catalog-index) MCTS path.
  const std::vector<std::size_t> mix_indices = {
      tinydet_col, models::model_index(models::ModelId::kVgg16),
      models::model_index(models::ModelId::kMobileNet)};
  sim::NetworkList mix_nets;
  std::vector<std::size_t> layer_counts;
  for (const std::size_t idx : mix_indices) {
    mix_nets.push_back(catalog[idx]);
    layer_counts.push_back(catalog[idx]->num_layers());
  }

  const core::MappingEvaluator evaluate = [&](const sim::Mapping& m) {
    return estimator->predict_reward(embedding.masked_input(mix_indices, m));
  };
  core::Mcts search(layer_counts, evaluate, {});
  const core::MctsResult plan = search.search();

  std::printf("mix: TinyDet+VGG-16+MobileNet (%zu rollouts, %zu tree nodes)\n",
              plan.iterations, plan.tree_nodes);
  for (std::size_t d = 0; d < mix_nets.size(); ++d) {
    std::printf("  %-10s: ", mix_nets[d]->name.c_str());
    for (const auto& seg : sim::extract_segments(plan.best_mapping.assignment(d)))
      std::printf("[L%zu-L%zu -> %s] ", seg.first + 1, seg.last + 1,
                  std::string(device::component_name(seg.comp)).c_str());
    std::printf("\n");
  }

  // 5. Measure, against the all-on-GPU baseline.
  const double t_found =
      board.simulate(mix_nets, plan.best_mapping).avg_throughput;
  const double t_base =
      board.simulate(mix_nets, sim::Mapping::all_on(layer_counts,
                                                    device::ComponentId::kGpu))
          .avg_throughput;
  std::printf("\nthroughput T: %.2f inf/s vs GPU-only %.2f inf/s (x%.2f) — "
              "no manual tuning was needed to absorb the new model\n",
              t_found, t_base, t_found / t_base);
  return 0;
}
