// Dataset extensibility (paper claim (iii)): the catalog-based embedding
// tensor and dataset generation paths, and their consistency with the
// zoo-based originals.

#include <gtest/gtest.h>

#include "core/dataset.hpp"
#include "core/embedding.hpp"
#include "models/net_builder.hpp"
#include "models/zoo.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

const device::DeviceSpec& hikey() {
  static const device::DeviceSpec d = device::make_hikey970();
  return d;
}

const device::CostModel& cost() {
  static const device::CostModel c(hikey());
  return c;
}

sim::NetworkList zoo_list() {
  sim::NetworkList nets;
  for (const models::NetworkDesc& n : zoo().networks()) nets.push_back(&n);
  return nets;
}

models::NetworkDesc make_custom() {
  models::NetBuilder b("Custom", {3, 224, 224});
  b.conv(16, 3, 2, 1, "stem");
  b.conv(32, 3, 1, 1, "conv2");
  b.maxpool(2, 2, 0, "pool");
  b.conv(64, 3, 1, 1, "conv3");
  b.global_avgpool("gap");
  b.fc(10, true, "head");
  return std::move(b).build();
}

// --- Embedding catalog path --------------------------------------------------

TEST(ExtendedEmbedding, ZooCatalogMatchesZooConstructor) {
  const core::EmbeddingTensor from_zoo(zoo(), cost());
  const core::EmbeddingTensor from_list(zoo_list(), cost());
  EXPECT_EQ(from_zoo.models_dim(), from_list.models_dim());
  EXPECT_EQ(from_zoo.layers_dim(), from_list.layers_dim());
  EXPECT_EQ(from_zoo.tensor(), from_list.tensor());
  EXPECT_DOUBLE_EQ(from_zoo.max_layer_time_s(), from_list.max_layer_time_s());
}

TEST(ExtendedEmbedding, IndexMaskMatchesWorkloadMask) {
  const core::EmbeddingTensor emb(zoo(), cost());
  const workload::Workload w{{ModelId::kVgg19, ModelId::kAlexNet}};
  util::Rng rng(3);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);

  const std::vector<std::size_t> indices = {
      models::model_index(ModelId::kVgg19),
      models::model_index(ModelId::kAlexNet)};
  EXPECT_EQ(emb.masked_input(w, m), emb.masked_input(indices, m));
}

TEST(ExtendedEmbedding, GrowsByOneColumnPerAddedModel) {
  const models::NetworkDesc custom = make_custom();
  sim::NetworkList catalog = zoo_list();
  catalog.push_back(&custom);

  const core::EmbeddingTensor emb(catalog, cost());
  EXPECT_EQ(emb.models_dim(), models::kNumModels + 1);
  // Layer capacity unchanged: the custom net is shorter than the longest
  // dataset model.
  EXPECT_EQ(emb.layers_dim(), zoo().max_layers());

  // The new column is profiled (non-zero) exactly over the custom net's
  // layers, on every component slice.
  const auto& u = emb.tensor();
  const std::size_t md = emb.models_dim();
  const std::size_t ld = emb.layers_dim();
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t l = 0; l < ld; ++l) {
      const float cell = u[c * md * ld + models::kNumModels * ld + l];
      if (l < custom.num_layers()) {
        EXPECT_GT(cell, 0.0f) << "c=" << c << " l=" << l;
      } else {
        EXPECT_EQ(cell, 0.0f) << "c=" << c << " l=" << l;
      }
    }
  }
}

TEST(ExtendedEmbedding, LongCustomNetExtendsLayerCapacity) {
  models::NetBuilder b("Deep", {3, 224, 224});
  b.conv(8, 3, 2, 1, "stem");
  for (int i = 0; i < 45; ++i)
    b.conv(8, 3, 1, 1, "conv" + std::to_string(i));
  b.global_avgpool("gap");
  b.fc(10, true, "head");
  const models::NetworkDesc deep = std::move(b).build();
  ASSERT_GT(deep.num_layers(), zoo().max_layers());

  sim::NetworkList catalog = zoo_list();
  catalog.push_back(&deep);
  const core::EmbeddingTensor emb(catalog, cost());
  EXPECT_EQ(emb.layers_dim(), deep.num_layers());
}

TEST(ExtendedEmbedding, RejectsBadCatalogs) {
  EXPECT_THROW(core::EmbeddingTensor(sim::NetworkList{}, cost()),
               std::invalid_argument);
  sim::NetworkList with_null = zoo_list();
  with_null.push_back(nullptr);
  EXPECT_THROW(core::EmbeddingTensor(with_null, cost()),
               std::invalid_argument);
}

TEST(ExtendedEmbedding, RejectsDuplicateAndOutOfRangeIndices) {
  const core::EmbeddingTensor emb(zoo(), cost());
  const std::size_t alex_layers = zoo().network(ModelId::kAlexNet).num_layers();
  const sim::Mapping m =
      sim::Mapping::all_on({alex_layers, alex_layers}, sim::ComponentId::kGpu);
  EXPECT_THROW(emb.masked_input(std::vector<std::size_t>{0, 0}, m),
               std::invalid_argument);
  EXPECT_THROW(emb.masked_input(std::vector<std::size_t>{0, 99}, m),
               std::invalid_argument);
}

// --- Catalog dataset generation ------------------------------------------------

TEST(ExtendedDataset, GeneratesRequestedSamples) {
  const models::NetworkDesc custom = make_custom();
  sim::NetworkList catalog = zoo_list();
  catalog.push_back(&custom);
  const core::EmbeddingTensor emb(catalog, cost());
  const sim::DesSimulator board(hikey());

  core::DatasetConfig dc;
  dc.samples = 40;
  dc.seed = 9;
  const core::SampleSet data = core::generate_dataset(catalog, emb, board, dc);
  ASSERT_EQ(data.size(), 40u);
  for (std::size_t s = 0; s < data.size(); ++s) {
    EXPECT_EQ(data.inputs[s].shape(),
              (tensor::Shape{3, emb.models_dim(), emb.layers_dim()}));
    for (const double t : data.targets[s]) {
      EXPECT_GE(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
  }
}

TEST(ExtendedDataset, RejectsMismatchedEmbedding) {
  // Embedding built from the plain zoo cannot serve an extended catalog.
  const models::NetworkDesc custom = make_custom();
  sim::NetworkList catalog = zoo_list();
  catalog.push_back(&custom);
  const core::EmbeddingTensor zoo_emb(zoo(), cost());
  const sim::DesSimulator board(hikey());
  core::DatasetConfig dc;
  dc.samples = 5;
  EXPECT_THROW(core::generate_dataset(catalog, zoo_emb, board, dc),
               std::invalid_argument);
}

TEST(ExtendedDataset, MixSizeClampedToCatalog) {
  // A 2-model catalog with the default max_mix = 5 must still work.
  const models::NetworkDesc custom = make_custom();
  sim::NetworkList tiny;
  tiny.push_back(&zoo().network(ModelId::kAlexNet));
  tiny.push_back(&custom);
  const core::EmbeddingTensor emb(tiny, cost());
  const sim::DesSimulator board(hikey());
  core::DatasetConfig dc;
  dc.samples = 10;
  const core::SampleSet data = core::generate_dataset(tiny, emb, board, dc);
  EXPECT_EQ(data.size(), 10u);
}

TEST(ExtendedDataset, DeterministicUnderSeed) {
  const models::NetworkDesc custom = make_custom();
  sim::NetworkList catalog = zoo_list();
  catalog.push_back(&custom);
  const core::EmbeddingTensor emb(catalog, cost());
  const sim::DesSimulator board(hikey());
  core::DatasetConfig dc;
  dc.samples = 8;
  dc.seed = 77;
  const core::SampleSet a = core::generate_dataset(catalog, emb, board, dc);
  const core::SampleSet b = core::generate_dataset(catalog, emb, board, dc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a.inputs[s], b.inputs[s]);
    EXPECT_EQ(a.targets[s], b.targets[s]);
  }
}

}  // namespace
