// Property-based verification of every analytic backward pass against
// central finite differences. These tests prove the training substrate the
// throughput estimator relies on.

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace {

using namespace omniboost::nn;
using omniboost::nn::KernelKind;
using omniboost::tensor::Shape;
using omniboost::tensor::Tensor;
using omniboost::util::Rng;

Tensor random_tensor(const Shape& shape, Rng& rng, double scale = 1.0) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(-scale, scale));
  return t;
}

/// Runs a gradient check and asserts both input and parameter gradients.
void expect_gradients_ok(Module& m, const Tensor& x, Rng& rng,
                         double tol = 2e-2) {
  const Tensor probe = m.forward(x);
  const Tensor target = random_tensor(probe.shape(), rng);
  MSELoss mse;
  const GradCheckResult r = check_gradients(m, x, target, mse);
  EXPECT_LT(r.max_input_err, tol) << "input gradient mismatch";
  EXPECT_LT(r.max_param_err, tol) << "parameter gradient mismatch";
}

/// Every lowering of a multi-kernel layer must pass the same checks
/// (nn/kernel.hpp: reference is the bit-frozen paper path, gemm the
/// im2col+GEMM lowering, simd the runtime-dispatched micro-kernel path —
/// which silently degrades to gemm on hosts without the ISA, so the simd
/// entry is always checkable).
const KernelKind kBothKernels[] = {KernelKind::kReference, KernelKind::kGemm,
                                   KernelKind::kSimd};

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, stride, pad, h, w;
};

class ConvGradCheck : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradCheck, MatchesFiniteDifference) {
  const ConvCase c = GetParam();
  for (const KernelKind kind : kBothKernels) {
    Rng rng(17);
    Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad);
    conv.init(rng);
    conv.set_kernel(kind);
    const Tensor x = random_tensor({2, c.in_ch, c.h, c.w}, rng);
    SCOPED_TRACE(kernel_name(kind));
    expect_gradients_ok(conv, x, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradCheck,
    ::testing::Values(ConvCase{1, 1, 3, 1, 1, 5, 5},   // same padding
                      ConvCase{2, 3, 3, 1, 0, 6, 6},   // valid padding
                      ConvCase{3, 2, 3, 2, 1, 7, 9},   // strided
                      ConvCase{2, 2, 1, 1, 0, 4, 4},   // pointwise
                      ConvCase{1, 2, 5, 1, 2, 7, 7},   // large kernel
                      ConvCase{2, 1, 3, 2, 0, 8, 6})); // strided valid

TEST(GradCheck, LinearLayer) {
  for (const KernelKind kind : kBothKernels) {
    Rng rng(23);
    Linear fc(5, 3);
    fc.init(rng);
    fc.set_kernel(kind);
    SCOPED_TRACE(kernel_name(kind));
    expect_gradients_ok(fc, random_tensor({4, 5}, rng), rng);
  }
}

TEST(GradCheck, LinearWithoutBias) {
  for (const KernelKind kind : kBothKernels) {
    Rng rng(29);
    Linear fc(4, 2, /*bias=*/false);
    fc.init(rng);
    fc.set_kernel(kind);
    SCOPED_TRACE(kernel_name(kind));
    expect_gradients_ok(fc, random_tensor({3, 4}, rng), rng);
  }
}

TEST(GradCheck, BatchNorm) {
  Rng rng(31);
  BatchNorm2d bn(3);
  bn.set_training(true);
  // Non-trivial gamma/beta so their gradients are exercised.
  bn.params()[0]->value.fill(1.3f);
  bn.params()[1]->value.fill(-0.2f);
  expect_gradients_ok(bn, random_tensor({3, 3, 4, 4}, rng), rng, 3e-2);
}

TEST(GradCheck, Gelu) {
  Rng rng(37);
  GELU gelu;
  expect_gradients_ok(gelu, random_tensor({2, 3, 4, 4}, rng), rng);
}

TEST(GradCheck, ReluAwayFromKink) {
  Rng rng(41);
  ReLU relu;
  // Keep probes away from 0 where ReLU is non-differentiable.
  Tensor x = random_tensor({2, 8}, rng);
  x.apply([](float v) { return v + (v >= 0.0f ? 0.5f : -0.5f); });
  expect_gradients_ok(relu, x, rng);
}

TEST(GradCheck, MaxPoolAwayFromTies) {
  Rng rng(43);
  MaxPool2d pool(2);
  // Distinct values avoid argmax flips under the finite-difference step.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(i) * 0.37f +
           static_cast<float>(rng.uniform(0.0, 0.05));
  expect_gradients_ok(pool, x, rng);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(47);
  GlobalAvgPool gap;
  expect_gradients_ok(gap, random_tensor({2, 3, 3, 5}, rng), rng);
}

TEST(GradCheck, Flatten) {
  Rng rng(53);
  Flatten flat;
  expect_gradients_ok(flat, random_tensor({2, 2, 3, 3}, rng), rng);
}

TEST(GradCheck, ResidualBlock) {
  for (const KernelKind kind : kBothKernels) {
    Rng rng(59);
    auto body = std::make_unique<Sequential>();
    body->emplace<Conv2d>(2, 2, 3, 1, 1);
    body->emplace<GELU>();
    Residual res(std::move(body));
    res.init(rng);
    res.set_kernel(kind);  // exercises container propagation
    SCOPED_TRACE(kernel_name(kind));
    expect_gradients_ok(res, random_tensor({2, 2, 4, 4}, rng), rng);
  }
}

TEST(GradCheck, EstimatorStyleComposite) {
  // A miniature of the throughput estimator: conv+BN+GELU, pool, residual,
  // GAP, linear head. Verifies gradient flow through the full stack, under
  // both compute kernels.
  for (const KernelKind kind : kBothKernels) {
    Rng rng(61);
    // (no pooling layer here: a finite-difference step can flip a pooling
    // argmax and poison the comparison; MaxPool has its own dedicated check)
    Sequential net;
    net.emplace<Conv2d>(3, 4, 3, 1, 1);
    net.emplace<BatchNorm2d>(4);
    net.emplace<GELU>();
    auto body = std::make_unique<Sequential>();
    body->emplace<Conv2d>(4, 4, 3, 1, 1);
    body->emplace<GELU>();
    net.add(std::make_unique<Residual>(std::move(body)));
    net.emplace<GlobalAvgPool>();
    net.emplace<Linear>(4, 3);
    net.init(rng);
    net.set_training(true);
    net.set_kernel(kind);
    SCOPED_TRACE(kernel_name(kind));
    // fp32 curvature through stacked BN/GELU loosens the comparison slightly.
    expect_gradients_ok(net, random_tensor({3, 3, 6, 8}, rng), rng, 6e-2);
  }
}

TEST(GradCheck, L1LossGradient) {
  // d|p-t|/dp = sign(p-t)/N.
  L1Loss l1;
  const Tensor pred = Tensor::from_vector({1.0f, -2.0f, 3.0f, 0.5f});
  const Tensor tgt = Tensor::from_vector({0.0f, 0.0f, 5.0f, 0.5f});
  const LossResult r = l1.compute(pred, tgt);
  EXPECT_FLOAT_EQ(r.value, (1.0f + 2.0f + 2.0f + 0.0f) / 4.0f);
  EXPECT_FLOAT_EQ(r.grad[0], 0.25f);
  EXPECT_FLOAT_EQ(r.grad[1], -0.25f);
  EXPECT_FLOAT_EQ(r.grad[2], -0.25f);
  EXPECT_FLOAT_EQ(r.grad[3], 0.0f);
}

TEST(GradCheck, MSELossGradient) {
  MSELoss mse;
  const Tensor pred = Tensor::from_vector({2.0f, -1.0f});
  const Tensor tgt = Tensor::from_vector({0.0f, 0.0f});
  const LossResult r = mse.compute(pred, tgt);
  EXPECT_FLOAT_EQ(r.value, (4.0f + 1.0f) / 2.0f);
  EXPECT_FLOAT_EQ(r.grad[0], 2.0f * 2.0f / 2.0f);
  EXPECT_FLOAT_EQ(r.grad[1], 2.0f * -1.0f / 2.0f);
}

TEST(GradCheck, LossShapeMismatchThrows) {
  L1Loss l1;
  EXPECT_THROW(
      l1.compute(Tensor::from_vector({1.0f}), Tensor::from_vector({1.0f, 2.0f})),
      std::invalid_argument);
}

}  // namespace
