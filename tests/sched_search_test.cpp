// The search-strategy scheduler family: greedy list scheduling, random
// search, hill climbing, simulated annealing, and the exact exhaustive
// optimizer, plus the segment-level neighbourhood move they share.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "core/omniboost.hpp"
#include "models/zoo.hpp"
#include "sched/exhaustive.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sim/analytic.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using sim::Assignment;
using sim::ComponentId;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

std::shared_ptr<const sim::AnalyticModel> analytic() {
  static const auto model =
      std::make_shared<const sim::AnalyticModel>(device::make_hikey970());
  return model;
}

sched::WorkloadEvaluatorFactory analytic_factory() {
  return sched::analytic_evaluator_factory(zoo(), analytic());
}

/// Achieved analytic throughput of a schedule decision (re-evaluated
/// post-hoc so schedulers with different internal reward units compare).
double achieved(const Workload& w, const sim::Mapping& m) {
  return analytic()->evaluate(w.resolve(zoo()), m).avg_throughput;
}

// --- Space counting -------------------------------------------------------

TEST(CountAssignments, SingleLayer) {
  EXPECT_DOUBLE_EQ(sched::count_assignments(1, 3), 3.0);
  EXPECT_DOUBLE_EQ(sched::count_assignments(1, 1), 3.0);
}

TEST(CountAssignments, TwoLayers) {
  // 3 single-stage + C(1,1)*3*2 two-stage.
  EXPECT_DOUBLE_EQ(sched::count_assignments(2, 3), 9.0);
  EXPECT_DOUBLE_EQ(sched::count_assignments(2, 1), 3.0);
}

TEST(CountAssignments, UnlimitedStagesIsFullPower) {
  // When the stage cap is >= L every component string is reachable: 3^L.
  for (std::size_t layers = 1; layers <= 6; ++layers) {
    EXPECT_DOUBLE_EQ(sched::count_assignments(layers, layers),
                     std::pow(3.0, static_cast<double>(layers)))
        << "layers=" << layers;
  }
}

TEST(CountAssignments, StageLimitMonotone) {
  for (std::size_t limit = 1; limit < 6; ++limit) {
    EXPECT_LE(sched::count_assignments(12, limit),
              sched::count_assignments(12, limit + 1));
  }
}

TEST(CountMappings, ProductOverDnns) {
  const Workload w{{ModelId::kAlexNet, ModelId::kVgg19}};
  const auto counts = w.layer_counts(zoo());
  EXPECT_DOUBLE_EQ(sched::count_mappings(zoo(), w, 3),
                   sched::count_assignments(counts[0], 3) *
                       sched::count_assignments(counts[1], 3));
}

TEST(CountMappings, RealisticSpaceIsHuge) {
  // The paper's point: tens of millions of valid mappings for a real mix.
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50}};
  EXPECT_GT(sched::count_mappings(zoo(), w, 3), 1e7);
}

// --- Enumeration ----------------------------------------------------------

TEST(EnumerateAssignments, MatchesCountAndIsUniqueAndValid) {
  for (std::size_t layers : {1u, 2u, 3u, 5u, 7u}) {
    const auto all = sched::enumerate_assignments(layers, 3, 100'000);
    EXPECT_EQ(static_cast<double>(all.size()),
              sched::count_assignments(layers, 3))
        << "layers=" << layers;
    std::set<Assignment> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), all.size()) << "duplicates at layers=" << layers;
    for (const Assignment& a : all) {
      EXPECT_EQ(a.size(), layers);
      EXPECT_LE(sim::num_stages(a), 3u);
    }
  }
}

TEST(EnumerateAssignments, StageLimitOneIsAllOn) {
  const auto all = sched::enumerate_assignments(9, 1, 10);
  ASSERT_EQ(all.size(), 3u);
  for (const Assignment& a : all) {
    EXPECT_EQ(sim::num_stages(a), 1u);
  }
}

TEST(EnumerateAssignments, ThrowsAboveGuard) {
  EXPECT_THROW(sched::enumerate_assignments(30, 3, 100), std::invalid_argument);
}

// --- Neighbourhood move ---------------------------------------------------

class PerturbProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerturbProperty, PreservesShapeAndStageLimit) {
  util::Rng rng(GetParam());
  for (std::size_t layers : {1u, 2u, 5u, 19u, 37u}) {
    Assignment a = workload::random_assignment(rng, layers, 3);
    for (int step = 0; step < 50; ++step) {
      sched::perturb_assignment(rng, a, 3);
      ASSERT_EQ(a.size(), layers);
      ASSERT_LE(sim::num_stages(a), 3u) << "layers=" << layers;
    }
  }
}

TEST_P(PerturbProperty, EventuallyMoves) {
  util::Rng rng(GetParam());
  const Assignment start = workload::random_assignment(rng, 12, 3);
  Assignment a = start;
  bool moved = false;
  for (int step = 0; step < 64 && !moved; ++step) {
    sched::perturb_assignment(rng, a, 3);
    moved = a != start;
  }
  EXPECT_TRUE(moved) << "64 perturbations never changed a 12-layer mapping";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerturbProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Random search --------------------------------------------------------

TEST(RandomSearch, RespectsBudgetAndStageLimit) {
  sched::LocalSearchConfig cfg;
  cfg.budget = 37;
  sched::RandomSearchScheduler s("rs", zoo(), analytic_factory(), cfg);
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  const auto r = s.schedule(w);
  EXPECT_EQ(r.evaluations, 37u);
  EXPECT_TRUE(r.mapping.within_stage_limit(3));
  EXPECT_GT(r.expected_reward, 0.0);
}

TEST(RandomSearch, DeterministicUnderSeed) {
  sched::LocalSearchConfig cfg;
  cfg.budget = 25;
  cfg.seed = 99;
  const Workload w{{ModelId::kMobileNet, ModelId::kAlexNet}};
  sched::RandomSearchScheduler a("rs", zoo(), analytic_factory(), cfg);
  sched::RandomSearchScheduler b("rs", zoo(), analytic_factory(), cfg);
  EXPECT_EQ(a.schedule(w).mapping, b.schedule(w).mapping);
}

TEST(RandomSearch, MoreBudgetNeverHurts) {
  // With a shared seed the first N draws coincide, so the best-so-far reward
  // is monotone in the budget.
  const Workload w{{ModelId::kVgg16, ModelId::kMobileNet}};
  double prev = -1.0;
  for (std::size_t budget : {5u, 20u, 80u}) {
    sched::LocalSearchConfig cfg;
    cfg.budget = budget;
    cfg.seed = 7;
    sched::RandomSearchScheduler s("rs", zoo(), analytic_factory(), cfg);
    const double reward = s.schedule(w).expected_reward;
    EXPECT_GE(reward, prev) << "budget=" << budget;
    prev = reward;
  }
}

// --- Hill climbing --------------------------------------------------------

TEST(HillClimb, RespectsBudgetAndStageLimit) {
  sched::HillClimbConfig cfg;
  cfg.budget = 60;
  sched::HillClimbScheduler s("hc", zoo(), analytic_factory(), cfg);
  const Workload w{{ModelId::kAlexNet, ModelId::kVgg13}};
  const auto r = s.schedule(w);
  EXPECT_EQ(r.evaluations, 60u);
  EXPECT_TRUE(r.mapping.within_stage_limit(3));
}

TEST(HillClimb, BeatsFirstRandomDraw) {
  // The climber starts from a random mapping; its final best can never be
  // worse than that start, and with a real budget it should strictly improve
  // on most seeds. Check the weaker invariant deterministically.
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kAlexNet}};
  sched::HillClimbConfig one;
  one.budget = 1;
  one.seed = 11;
  sched::HillClimbConfig full = one;
  full.budget = 150;
  sched::HillClimbScheduler first("hc", zoo(), analytic_factory(), one);
  sched::HillClimbScheduler climber("hc", zoo(), analytic_factory(), full);
  EXPECT_GE(climber.schedule(w).expected_reward,
            first.schedule(w).expected_reward);
}

// --- Simulated annealing --------------------------------------------------

TEST(Annealing, RespectsBudgetAndStageLimit) {
  sched::AnnealingConfig cfg;
  cfg.budget = 80;
  sched::SimulatedAnnealingScheduler s("sa", zoo(), analytic_factory(), cfg);
  const Workload w{{ModelId::kResNet34, ModelId::kSqueezeNet}};
  const auto r = s.schedule(w);
  EXPECT_EQ(r.evaluations, 80u);
  EXPECT_TRUE(r.mapping.within_stage_limit(3));
  EXPECT_GT(r.expected_reward, 0.0);
}

TEST(Annealing, RejectsBadTemperatureSchedule) {
  sched::AnnealingConfig cfg;
  cfg.initial_temperature = 0.01;
  cfg.final_temperature = 0.5;  // inverted
  EXPECT_THROW(sched::SimulatedAnnealingScheduler("sa", zoo(),
                                                  analytic_factory(), cfg),
               std::invalid_argument);
}

TEST(Annealing, TracksBestEverSeen) {
  // expected_reward must be the max over the whole trajectory, not the final
  // (possibly downhill-accepted) state: re-evaluating the returned mapping
  // reproduces the reported reward.
  sched::AnnealingConfig cfg;
  cfg.budget = 120;
  cfg.seed = 3;
  sched::SimulatedAnnealingScheduler s("sa", zoo(), analytic_factory(), cfg);
  const Workload w{{ModelId::kVgg16, ModelId::kAlexNet}};
  const auto r = s.schedule(w);
  EXPECT_NEAR(r.expected_reward, achieved(w, r.mapping), 1e-9);
}

// --- Greedy ---------------------------------------------------------------

TEST(Greedy, DeterministicZeroCostDecision) {
  sched::GreedyScheduler a(zoo(), device::make_hikey970());
  sched::GreedyScheduler b(zoo(), device::make_hikey970());
  const Workload w{{ModelId::kVgg19, ModelId::kResNet50, ModelId::kAlexNet}};
  const auto ra = a.schedule(w);
  const auto rb = b.schedule(w);
  EXPECT_EQ(ra.mapping, rb.mapping);
  EXPECT_EQ(ra.board_seconds, 0.0);
  EXPECT_TRUE(ra.mapping.within_stage_limit(3));
}

TEST(Greedy, DistributesHeavyMixAcrossComponents) {
  sched::GreedyScheduler s(zoo(), device::make_hikey970());
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50,
                    ModelId::kInceptionV3}};
  const auto r = s.schedule(w);
  std::set<ComponentId> used;
  for (std::size_t d = 0; d < r.mapping.num_dnns(); ++d) {
    for (ComponentId c : r.mapping.assignment(d)) used.insert(c);
  }
  EXPECT_GE(used.size(), 2u)
      << "load-aware greedy left a heavy 4-DNN mix on one component";
}

TEST(Greedy, HeavyMixStaysInSaneThroughputBand) {
  // A myopic greedy is not guaranteed to beat the all-GPU baseline — the
  // paper's related-work critique (§III) is exactly that trial-and-error
  // greedy placement explores the space poorly. It must, however, produce a
  // feasible mapping that clearly beats the all-LITTLE floor and stays
  // within a sane band of the baseline.
  sched::GreedyScheduler s(zoo(), device::make_hikey970());
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50,
                    ModelId::kInceptionV3}};
  const auto greedy = s.schedule(w);
  const double got = achieved(w, greedy.mapping);
  ASSERT_GT(got, 0.0) << "mix must be feasible";

  const sim::Mapping all_little =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kLittleCpu);
  const sim::Mapping all_gpu =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  EXPECT_GT(got, achieved(w, all_little));
  EXPECT_GT(got, 0.5 * achieved(w, all_gpu));
}

TEST(Greedy, StageLimitOneKeepsWholeNetsTogether) {
  sched::GreedyConfig cfg;
  cfg.max_stages = 1;
  sched::GreedyScheduler s(zoo(), device::make_hikey970(), cfg);
  const Workload w{{ModelId::kAlexNet, ModelId::kVgg19, ModelId::kMobileNet}};
  const auto r = s.schedule(w);
  EXPECT_EQ(r.mapping.max_stages(), 1u);
}

// --- Exhaustive / optimality ---------------------------------------------

TEST(Exhaustive, ThrowsOnHugeSpace) {
  sched::ExhaustiveScheduler s("exact", zoo(), analytic_factory(), {});
  const Workload w{{ModelId::kVgg19, ModelId::kResNet101}};
  EXPECT_THROW(s.schedule(w), std::invalid_argument);
}

class TinyWorkloadOptimality : public ::testing::Test {
 protected:
  // One AlexNet: a few hundred stage-limited assignments — exactly
  // enumerable, yet already a non-trivial placement problem.
  const Workload w_{{ModelId::kAlexNet}};

  core::ScheduleResult exact_schedule() {
    sched::ExhaustiveScheduler exact("exact", zoo(), analytic_factory(), {});
    return exact.schedule(w_);
  }
};

TEST_F(TinyWorkloadOptimality, ExhaustiveEvaluatesWholeSpace) {
  const auto r = exact_schedule();
  EXPECT_DOUBLE_EQ(static_cast<double>(r.evaluations),
                   sched::count_mappings(zoo(), w_, 3));
  EXPECT_TRUE(r.mapping.within_stage_limit(3));
}

TEST_F(TinyWorkloadOptimality, OptimumDominatesRandomSamples) {
  const double optimum = exact_schedule().expected_reward;
  util::Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const sim::Mapping m = workload::random_mapping(rng, zoo(), w_, 3);
    EXPECT_LE(achieved(w_, m), optimum + 1e-9);
  }
}

TEST_F(TinyWorkloadOptimality, MctsGetsCloseToOptimum) {
  const double optimum = exact_schedule().expected_reward;

  core::MctsConfig mcts;
  mcts.budget = 400;
  mcts.seed = 5;
  const auto factory = analytic_factory();
  core::MctsScheduler s("mcts-oracle", zoo(), factory(w_), mcts);
  const double got = achieved(w_, s.schedule(w_).mapping);
  // Uniform rollouts rarely sample late-splitting pipelines, so MCTS cannot
  // be expected to hit the exact optimum on this adversarial single-DNN
  // space; the paper's claim is "near optimal with high probability".
  EXPECT_GE(got, 0.80 * optimum)
      << "MCTS landed at " << got << " vs optimum " << optimum;
}

// --- Canonical enumeration order ------------------------------------------
//
// BnB, the exhaustive search, and the reduce pass all assume the one
// canonical order documented in search_common.hpp: layer-major DFS with
// components tried in kAllComponents order and stage-infeasible prefixes
// skipped. This golden pins it with an independent reimplementation, so any
// accidental reorder breaks here before it silently breaks the
// first-strict-improvement agreement between the searches.

std::vector<Assignment> reference_order(std::size_t layers,
                                        std::size_t stage_limit) {
  std::vector<Assignment> out;
  Assignment scratch(layers, ComponentId::kGpu);
  const std::function<void(std::size_t, std::size_t)> rec =
      [&](std::size_t l, std::size_t stages) {
        if (l == layers) {
          out.push_back(scratch);
          return;
        }
        for (const ComponentId comp : device::kAllComponents) {
          std::size_t next = stages;
          if (l > 0 && comp != scratch[l - 1]) {
            if (stages == stage_limit) continue;
            next = stages + 1;
          }
          scratch[l] = comp;
          rec(l + 1, next);
        }
      };
  rec(0, 1);
  return out;
}

TEST(EnumerateAssignments, CanonicalOrderGolden) {
  for (const std::size_t layers : {1u, 2u, 3u, 5u, 7u}) {
    const auto got = sched::enumerate_assignments(layers, 3, 100'000);
    const auto want = reference_order(layers, 3);
    ASSERT_EQ(got.size(), want.size()) << "layers=" << layers;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "layers=" << layers << " index=" << i;
    }
    // Spot pins of the contract's two most load-bearing corollaries.
    EXPECT_EQ(got.front(),
              Assignment(layers, ComponentId::kGpu));  // all-GPU first
  }
}

TEST(EnumerateAssignments, AllowedListsRestrictTheSameOrder) {
  // Enumerating under per-layer allowed lists must equal filtering the full
  // canonical enumeration — same membership, same relative order.
  const std::size_t layers = 5;
  sched::LayerChoices allowed(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    allowed[l] = (l == 2)
                     ? std::vector<ComponentId>{ComponentId::kGpu,
                                                ComponentId::kBigCpu}
                     : std::vector<ComponentId>{device::kAllComponents.begin(),
                                                device::kAllComponents.end()};
  }
  const auto restricted =
      sched::enumerate_assignments(layers, 3, 100'000, &allowed);
  auto filtered = sched::enumerate_assignments(layers, 3, 100'000);
  filtered.erase(std::remove_if(filtered.begin(), filtered.end(),
                                [](const Assignment& a) {
                                  return a[2] == ComponentId::kLittleCpu;
                                }),
                 filtered.end());
  EXPECT_EQ(restricted, filtered);
}

// --- Relaxed-bound admissibility ------------------------------------------

/// Single-DNN partials: the bound at any partial must dominate the best
/// achieved throughput over every consistent stage-valid completion.
TEST(RelaxedBound, AdmissibleOverSingleDnnCompletions) {
  const Workload w{{ModelId::kAlexNet}};
  const sim::NetworkList nets = w.resolve(zoo());
  const std::size_t layers = nets[0]->num_layers();
  const auto all = sched::enumerate_assignments(layers, 3, 100'000);

  std::vector<double> value(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    value[i] = achieved(w, sim::Mapping({all[i]}));
  }

  const sim::RelaxedBound bound(nets, analytic()->cost_model());
  util::Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const Assignment& base = all[rng.below(all.size())];
    std::vector<sim::PartialAssignment> partial(1);
    partial[0].assign(layers, sim::kLayerUnassigned);
    // Keep each committed position with probability 1/2.
    std::vector<bool> committed(layers);
    for (std::size_t l = 0; l < layers; ++l) {
      committed[l] = rng.below(2) == 0;
      if (committed[l])
        partial[0][l] = static_cast<std::int8_t>(base[l]);
    }
    const double ub = bound.upper_bound(partial);
    for (std::size_t i = 0; i < all.size(); ++i) {
      bool consistent = true;
      for (std::size_t l = 0; l < layers && consistent; ++l) {
        consistent = !committed[l] || all[i][l] == base[l];
      }
      if (consistent) {
        ASSERT_GE(ub, value[i])
            << "trial=" << trial << " completion=" << i
            << " — relaxed bound fell below a reachable completion";
      }
    }
  }
}

/// Two-DNN partials with three holes: brute-force the <= 27 completions.
TEST(RelaxedBound, AdmissibleOverTwoDnnHoleCompletions) {
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  const sim::NetworkList nets = w.resolve(zoo());
  const auto counts = w.layer_counts(zoo());
  const sim::RelaxedBound bound(nets, analytic()->cost_model());

  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    // Start from a random stage-valid complete mapping, punch three holes.
    const sim::Mapping base = workload::random_mapping(rng, zoo(), w, 3);
    std::vector<sim::PartialAssignment> partial(counts.size());
    for (std::size_t d = 0; d < counts.size(); ++d) {
      partial[d].resize(counts[d]);
      for (std::size_t l = 0; l < counts[d]; ++l)
        partial[d][l] = static_cast<std::int8_t>(base.assignment(d)[l]);
    }
    std::vector<std::pair<std::size_t, std::size_t>> holes;
    while (holes.size() < 3) {
      const std::size_t d = rng.below(counts.size());
      const std::size_t l = rng.below(counts[d]);
      if (partial[d][l] != sim::kLayerUnassigned) {
        partial[d][l] = sim::kLayerUnassigned;
        holes.emplace_back(d, l);
      }
    }
    const double ub = bound.upper_bound(partial);

    // The bound ignores the stage limit, so it must dominate every one of
    // the 27 completions, stage-valid or not.
    for (int combo = 0; combo < 27; ++combo) {
      std::vector<Assignment> per_dnn;
      per_dnn.reserve(counts.size());
      for (std::size_t d = 0; d < counts.size(); ++d)
        per_dnn.push_back(base.assignment(d));
      int rest = combo;
      for (const auto& [d, l] : holes) {
        per_dnn[d][l] = static_cast<ComponentId>(rest % 3);
        rest /= 3;
      }
      const double got = achieved(w, sim::Mapping(std::move(per_dnn)));
      ASSERT_GE(ub, got) << "trial=" << trial << " combo=" << combo;
    }
  }
}

TEST(RelaxedBound, CompleteMappingStillBoundsItsOwnValue) {
  // Degenerate partial with no holes: the relaxation (no contention, no DRAM
  // wall) must still sit at or above the exact evaluation.
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet}};
  const sim::NetworkList nets = w.resolve(zoo());
  const auto counts = w.layer_counts(zoo());
  util::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
    std::vector<sim::PartialAssignment> partial(counts.size());
    for (std::size_t d = 0; d < counts.size(); ++d) {
      partial[d].resize(counts[d]);
      for (std::size_t l = 0; l < counts[d]; ++l)
        partial[d][l] = static_cast<std::int8_t>(m.assignment(d)[l]);
    }
    EXPECT_GE(sim::relaxed_throughput_bound(nets, partial,
                                            analytic()->cost_model()),
              achieved(w, m))
        << "trial=" << trial;
  }
}

TEST_F(TinyWorkloadOptimality, InformedSearchesReachReasonableFraction) {
  const double optimum = exact_schedule().expected_reward;

  sched::HillClimbConfig hc;
  hc.budget = 300;
  sched::HillClimbScheduler climb("hc", zoo(), analytic_factory(), hc);
  EXPECT_GE(achieved(w_, climb.schedule(w_).mapping), 0.85 * optimum);

  sched::AnnealingConfig sa;
  sa.budget = 300;
  sched::SimulatedAnnealingScheduler anneal("sa", zoo(), analytic_factory(),
                                            sa);
  EXPECT_GE(achieved(w_, anneal.schedule(w_).mapping), 0.85 * optimum);
}

}  // namespace
