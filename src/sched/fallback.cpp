#include "sched/fallback.hpp"

#include <chrono>
#include <cmath>
#include <exception>

#include "sched/greedy.hpp"
#include "util/require.hpp"

namespace omniboost::sched {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

FallbackScheduler::FallbackScheduler(std::unique_ptr<core::IScheduler> primary,
                                     std::unique_ptr<core::IScheduler> fallback,
                                     FallbackConfig config)
    : primary_(std::move(primary)),
      fallback_(std::move(fallback)),
      config_(config) {
  OB_REQUIRE(primary_ != nullptr && fallback_ != nullptr,
             "FallbackScheduler: both schedulers are required");
  OB_REQUIRE(std::isfinite(config_.deadline_ms) && config_.deadline_ms >= 0.0,
             "FallbackScheduler: deadline_ms must be finite and >= 0");
  OB_REQUIRE(config_.max_attempts >= 1,
             "FallbackScheduler: max_attempts must be >= 1");
  OB_REQUIRE(std::isfinite(config_.backoff_multiplier) &&
                 config_.backoff_multiplier >= 1.0,
             "FallbackScheduler: backoff_multiplier must be finite and >= 1");
}

std::string FallbackScheduler::name() const {
  return primary_->name() + "+fallback(" + fallback_->name() + ")";
}

template <typename Attempt>
core::ScheduleResult FallbackScheduler::guarded(const Attempt& attempt) {
  const auto start = std::chrono::steady_clock::now();
  if (config_.deadline_ms > 0.0) {
    double allowed_s = config_.deadline_ms / 1e3;
    for (std::size_t k = 0; k < config_.max_attempts; ++k) {
      if (k > 0) ++stats_.retries;
      const auto attempt_start = std::chrono::steady_clock::now();
      try {
        core::ScheduleResult r = attempt(*primary_);
        if (seconds_since(attempt_start) <= allowed_s) {
          ++stats_.primary_decisions;
          r.decision_seconds = seconds_since(start);
          return r;
        }
        // Late result: stale by the time it is ready — discard and either
        // retry with a grown deadline or fall through to the fallback.
        ++stats_.deadline_misses;
      } catch (const std::exception&) {
        ++stats_.exceptions;
      }
      allowed_s *= config_.backoff_multiplier;
    }
  }
  core::ScheduleResult r = attempt(*fallback_);
  ++stats_.fallback_decisions;
  r.decision_seconds = seconds_since(start);
  return r;
}

core::ScheduleResult FallbackScheduler::schedule(const workload::Workload& w) {
  return guarded(
      [&](core::IScheduler& s) -> core::ScheduleResult { return s.schedule(w); });
}

core::ScheduleResult FallbackScheduler::reschedule(
    const workload::Workload& w, const sim::Mapping& previous,
    const core::ScheduleContext& ctx) {
  return guarded([&](core::IScheduler& s) -> core::ScheduleResult {
    return s.reschedule(w, previous, ctx);
  });
}

std::unique_ptr<FallbackScheduler> make_greedy_fallback(
    std::unique_ptr<core::IScheduler> primary, const models::ModelZoo& zoo,
    const device::DeviceSpec& device, FallbackConfig config) {
  return std::make_unique<FallbackScheduler>(
      std::move(primary), std::make_unique<GreedyScheduler>(zoo, device),
      config);
}

}  // namespace omniboost::sched
