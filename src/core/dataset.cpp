#include "core/dataset.hpp"

#include <numeric>

#include "util/require.hpp"
#include "workload/generator.hpp"

namespace omniboost::core {

SampleSet generate_dataset(const models::ModelZoo& zoo,
                           const EmbeddingTensor& embedding,
                           const sim::DesSimulator& board,
                           const DatasetConfig& config) {
  // Kept separate from the catalog variant below to preserve the exact RNG
  // draw sequence of the original campaign: the trained estimator (and with
  // it every figure) is reproducible from the seed across releases.
  OB_REQUIRE(config.samples > 0, "generate_dataset: zero samples");
  OB_REQUIRE(config.min_mix >= 1 && config.min_mix <= config.max_mix &&
                 config.max_mix <= models::kNumModels,
             "generate_dataset: bad mix-size range");

  util::Rng rng(config.seed);
  SampleSet set;
  set.inputs.reserve(config.samples);
  set.targets.reserve(config.samples);

  std::size_t attempts = 0;
  const std::size_t max_attempts = config.samples * 20;
  while (set.size() < config.samples) {
    OB_ENSURE(++attempts <= max_attempts,
              "generate_dataset: too many infeasible workloads");
    const std::size_t n = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_mix),
                  static_cast<std::int64_t>(config.max_mix)));
    const workload::Workload w = workload::random_mix(rng, n);
    const sim::Mapping mapping =
        workload::random_mapping(rng, zoo, w, config.stage_limit);

    const sim::ThroughputReport report =
        board.simulate(w.resolve(zoo), mapping);
    if (!report.feasible) continue;  // unrunnable on the physical board

    set.inputs.push_back(embedding.masked_input(w, mapping));
    set.targets.push_back({report.per_component_rate[0],
                           report.per_component_rate[1],
                           report.per_component_rate[2]});
  }
  return set;
}

SampleSet generate_dataset(const sim::NetworkList& nets,
                           const EmbeddingTensor& embedding,
                           const sim::DesSimulator& board,
                           const DatasetConfig& config) {
  OB_REQUIRE(config.samples > 0, "generate_dataset: zero samples");
  OB_REQUIRE(!nets.empty(), "generate_dataset: empty catalog");
  const std::size_t max_mix = std::min(config.max_mix, nets.size());
  OB_REQUIRE(config.min_mix >= 1 && config.min_mix <= max_mix,
             "generate_dataset: bad mix-size range");
  OB_REQUIRE(embedding.models_dim() == nets.size(),
             "generate_dataset: embedding/catalog dimension mismatch");

  util::Rng rng(config.seed);
  SampleSet set;
  set.inputs.reserve(config.samples);
  set.targets.reserve(config.samples);

  std::vector<std::size_t> all_indices(nets.size());
  std::iota(all_indices.begin(), all_indices.end(), 0);

  std::size_t attempts = 0;
  const std::size_t max_attempts = config.samples * 20;
  while (set.size() < config.samples) {
    OB_ENSURE(++attempts <= max_attempts,
              "generate_dataset: too many infeasible workloads");
    const std::size_t n = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_mix),
                  static_cast<std::int64_t>(max_mix)));

    // Distinct random catalog indices (partial Fisher-Yates).
    std::vector<std::size_t> indices = all_indices;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = i + rng.below(indices.size() - i);
      std::swap(indices[i], indices[j]);
    }
    indices.resize(n);

    sim::NetworkList mix_nets;
    std::vector<sim::Assignment> per_dnn;
    mix_nets.reserve(n);
    per_dnn.reserve(n);
    for (const std::size_t idx : indices) {
      mix_nets.push_back(nets[idx]);
      per_dnn.push_back(workload::random_assignment(
          rng, nets[idx]->num_layers(), config.stage_limit));
    }
    const sim::Mapping mapping(std::move(per_dnn));

    const sim::ThroughputReport report = board.simulate(mix_nets, mapping);
    if (!report.feasible) continue;  // unrunnable on the physical board

    set.inputs.push_back(embedding.masked_input(indices, mapping));
    set.targets.push_back({report.per_component_rate[0],
                           report.per_component_rate[1],
                           report.per_component_rate[2]});
  }
  return set;
}

}  // namespace omniboost::core
