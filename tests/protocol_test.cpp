// The daemon wire protocol's building blocks: the shared trace-clause
// grammar (workload::parse_event_clause / serialize_event_clause), the
// PacedClock, the loopback TCP shims, and the ThreadPool async hook — plus a
// malformed-command corpus and a byte-mutation fuzz asserting the parser
// only ever fails with std::invalid_argument (clean `err` replies, never a
// daemon crash).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.hpp"
#include "util/net.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace omniboost;
using workload::parse_event_clause;
using workload::Scenario;
using workload::ScenarioEvent;
using workload::ScenarioEventKind;
using workload::serialize_event_clause;

bool events_equal(const ScenarioEvent& a, const ScenarioEvent& b) {
  return a.time_s == b.time_s && a.kind == b.kind && a.model == b.model &&
         a.slo_ms == b.slo_ms && a.board == b.board && a.factor == b.factor;
}

std::vector<std::string> valid_clauses() {
  return {
      "arrive MobileNet",
      "arrive VGG-19 slo 150",
      "arrive AlexNet slo 0.5",
      "depart MobileNet",
      "fail board 0",
      "fail board 3",
      "throttle board 1 0.5",
      "recover board 2",
      "arrive ResNet-50 slo 100  # trailing comment",
  };
}

// --- Shared grammar: the daemon's command language IS the trace grammar.

TEST(ProtocolGrammar, ClauseRoundTripsThroughSerialize) {
  for (const std::string& clause : valid_clauses()) {
    const ScenarioEvent e = parse_event_clause(clause, 12.5);
    EXPECT_EQ(e.time_s, 12.5);
    const std::string out = serialize_event_clause(e);
    const ScenarioEvent back = parse_event_clause(out, 12.5);
    EXPECT_TRUE(events_equal(e, back)) << clause << " -> " << out;
  }
}

TEST(ProtocolGrammar, ClausePlusTimestampMatchesTraceLine) {
  // `at <t> <clause>` through the trace serializer equals the clause
  // serializer with the prefix added by hand — one grammar, two doors.
  std::vector<ScenarioEvent> events;
  events.push_back(parse_event_clause("arrive MobileNet slo 100", 1.25));
  events.push_back(parse_event_clause("depart MobileNet", 2.5));
  const std::string trace = workload::serialize_scenario(Scenario(events));
  for (const ScenarioEvent& e : events)
    EXPECT_NE(trace.find(serialize_event_clause(e)), std::string::npos);
  const Scenario replayed = workload::parse_scenario(trace);
  ASSERT_EQ(replayed.events().size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_TRUE(events_equal(replayed.events()[i], events[i]));
}

TEST(ProtocolGrammar, MalformedCorpusThrowsInvalidArgumentOnly) {
  const std::vector<std::string> corpus = {
      "",
      "   ",
      "arriv MobileNet",
      "arrive",
      "arrive NoSuchNet",
      "arrive MobileNet slo",
      "arrive MobileNet slo -5",
      "arrive MobileNet slo NaN",
      "arrive MobileNet slo 100 extra",
      "depart",
      "depart NoSuchNet",
      "depart MobileNet now",
      "fail",
      "fail board",
      "fail board -1",
      "fail board two",
      "fail board 0 hard",
      "throttle board 1",
      "throttle board 1 0",
      "throttle board 1 1.5",
      "throttle board 1 -0.5",
      "throttle board 1 to 0.5",
      "throttle board 1 0.5 extra",
      "recover",
      "recover board",
      "recover board x",
      "shutdown now please",  // daemon keywords are NOT grammar clauses
      "status",
      "at 3 arrive MobileNet",  // the `at` prefix belongs to the trace layer
  };
  for (const std::string& bad : corpus) {
    EXPECT_THROW(parse_event_clause(bad, 1.0), std::invalid_argument)
        << "accepted: '" << bad << "'";
  }
}

TEST(ProtocolGrammar, ByteMutationFuzzNeverEscapesInvalidArgument) {
  // Mutate valid clauses byte-by-byte: every outcome must be either a
  // clean parse or std::invalid_argument — anything else would crash the
  // daemon loop. 2000 mutations across the corpus.
  const std::vector<std::string> seeds = valid_clauses();
  util::Rng rng(0xfeedbeef);
  std::size_t parsed = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s = seeds[rng.below(seeds.size())];
    const std::size_t edits = 1 + rng.below(3);
    for (std::size_t k = 0; k < edits && !s.empty(); ++k) {
      const std::size_t pos = rng.below(s.size());
      switch (rng.below(3)) {
        case 0:
          s[pos] = static_cast<char>(32 + rng.below(95));
          break;
        case 1:
          s.erase(pos, 1);
          break;
        default:
          s.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
          break;
      }
    }
    try {
      (void)parse_event_clause(s, 1.0);
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    // Any other exception type (or a crash) fails the test by escaping.
  }
  EXPECT_EQ(parsed + rejected, 2000u);
  EXPECT_GT(rejected, 0u);
}

// --- PacedClock: monotonic scaled wall time.

TEST(PacedClock, MonotonicAndScaled) {
  const util::PacedClock slow(1.0);
  const util::PacedClock fast(1000.0);
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double t = slow.now_s();
    EXPECT_GE(t, prev);
    prev = t;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // 5ms real at x1000 reads as >= ~5 scenario-seconds; at x1 well under 1.
  EXPECT_GE(fast.now_s(), 1.0);
  EXPECT_LT(slow.now_s(), 1.0);
  EXPECT_EQ(fast.scale(), 1000.0);
}

TEST(PacedClock, RejectsBadScale) {
  EXPECT_THROW(util::PacedClock(0.0), std::invalid_argument);
  EXPECT_THROW(util::PacedClock(-2.0), std::invalid_argument);
  EXPECT_THROW(util::PacedClock(std::nan("")), std::invalid_argument);
}

// --- Loopback TCP shims.

TEST(Net, LoopbackLineRoundTrip) {
  util::TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);
  util::TcpStream client = util::tcp_connect("localhost", listener.port());
  util::TcpStream server = listener.accept(2000);
  ASSERT_TRUE(server.valid());

  client.send_line("arrive MobileNet slo 100");
  std::string line;
  ASSERT_EQ(server.recv_line(&line, 2000),
            util::TcpStream::RecvStatus::kLine);
  EXPECT_EQ(line, "arrive MobileNet slo 100");

  // Multiple lines in one burst buffer correctly.
  server.send_line("admitted");
  server.send_line("ok");
  ASSERT_EQ(client.recv_line(&line, 2000),
            util::TcpStream::RecvStatus::kLine);
  EXPECT_EQ(line, "admitted");
  ASSERT_EQ(client.recv_line(&line, 2000),
            util::TcpStream::RecvStatus::kLine);
  EXPECT_EQ(line, "ok");
}

TEST(Net, TimeoutAndEof) {
  util::TcpListener listener(0);
  util::TcpStream client = util::tcp_connect("127.0.0.1", listener.port());
  util::TcpStream server = listener.accept(2000);
  ASSERT_TRUE(server.valid());
  std::string line;
  EXPECT_EQ(server.recv_line(&line, 10),
            util::TcpStream::RecvStatus::kTimeout);
  client.close();
  EXPECT_EQ(server.recv_line(&line, 2000),
            util::TcpStream::RecvStatus::kClosed);
}

TEST(Net, RejectsEmbeddedNewlineAndAcceptTimeout) {
  util::TcpListener listener(0);
  util::TcpStream none = listener.accept(10);
  EXPECT_FALSE(none.valid());
  util::TcpStream client = util::tcp_connect("localhost", listener.port());
  EXPECT_THROW(client.send_line("two\nlines"), std::invalid_argument);
}

// --- ThreadPool async hook (the daemon's background-search slot).

TEST(ThreadPoolAsync, RunsAndJoins) {
  util::ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.async([&] { ++hits; });
  pool.async_join();
  EXPECT_EQ(hits.load(), 1);
  EXPECT_FALSE(pool.async_active());

  pool.async([&] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.async_join(), std::runtime_error);
  // The error slot is cleared: the pool is reusable.
  pool.async([&] { ++hits; });
  pool.async_join();
  EXPECT_EQ(hits.load(), 2);
}

TEST(ThreadPoolAsync, InlineModeRunsSynchronously) {
  util::ThreadPool pool(1);  // no worker threads
  int hits = 0;
  pool.async([&] { ++hits; });
  EXPECT_EQ(hits, 1);  // already ran, before join
  EXPECT_FALSE(pool.async_active());
  pool.async_join();  // no-op, no error

  pool.async([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(pool.async_join(), std::runtime_error);
}

TEST(ThreadPoolAsync, SingleSlotEnforced) {
  util::ThreadPool pool(2);
  std::atomic<bool> release{false};
  pool.async([&] {
    while (!release.load()) std::this_thread::yield();
  });
  EXPECT_THROW(pool.async([] {}), std::invalid_argument);
  release = true;
  pool.async_join();
}

}  // namespace
