#!/usr/bin/env sh
# Tier-1 verify: configure + build + ctest, fail-fast.
# CI and humans run this identical path; it is the scripted form of
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
# Run from anywhere; the repo root is derived from this script's location.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${OMNIBOOST_BUILD_DIR:-$root/build}"
jobs="${OMNIBOOST_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== configure =="
cmake -B "$build_dir" -S "$root"

echo "== build ($jobs jobs) =="
cmake --build "$build_dir" -j "$jobs"

echo "== ctest =="
cd "$build_dir"
ctest --output-on-failure -j "$jobs"

echo "== tier-1 PASS =="
