#pragma once
/// \file cluster.hpp
/// Fleet-scale serving: a Cluster routes one global workload::Scenario
/// across N heterogeneous boards, each running its own DES simulator,
/// scheduler, and ServingSession (the exact single-board epoch engine —
/// a 1-board cluster replays a scenario bit-identically to ServingRuntime,
/// pinned by tests/cluster_test.cpp).
///
/// Responsibilities split three ways:
///  - *Admission*: an arrival is rejected outright when NO board can
///    possibly serve it — the memory lower bound (resident working sets +
///    per-stream framework overhead, mirroring sim's build_scene
///    accounting) would overflow every board's budget, or the stream's SLO
///    is below every board's solo-latency floor (an admissible bound: the
///    sum over layers of the best-component uncontended time, plus the
///    per-inference overhead). Rejected streams never reach a board; their
///    later departures are swallowed and counted.
///  - *Placement*: among the boards that admit, a pluggable
///    IPlacementPolicy picks one (least-loaded / best-estimated-T /
///    memory-headroom). Policies are pure functions of the BoardViews, so
///    routing is deterministic and replayable.
///  - *Rescue migration*: when an admitted arrival leaves its board
///    infeasible (the DES measured epoch reports feasible == false), the
///    cluster moves the arriving stream to another admitting board, pricing
///    the move as a cross-board weight transfer (total_weight_bytes over
///    cross_board_gbps, plus the migration model's per-segment overhead)
///    charged to the stream's first epoch on the new board as a one-off DES
///    start stall. Cross-board costs are fleet-level accounting
///    (ClusterReport) — per-board EpochReport migration fields stay
///    intra-board.
///  - *Fault tolerance*: scenario fault events (fail/throttle/recover, see
///    workload/scenario.hpp) are fleet-level. On `fail` the cluster evicts
///    the board and fails its resident streams over to surviving boards
///    (lightest working set first, priced like rescue migrations; streams
///    no surviving board admits are SHED — degradation accounted separately
///    from admission rejections, and shed streams' later departures are
///    swallowed). On `throttle` the board's DES slows to the factor and the
///    resident mix is re-decided/re-measured in place (a refresh epoch).
///    On `recover` the board returns to full speed (optionally pulling
///    streams back from the most-loaded board when
///    ClusterConfig::rebalance_on_recovery is set). Fault-free scenarios
///    take none of these paths, so their reports stay byte-identical to the
///    pre-fault cluster (pinned by tests/cluster_test.cpp).
///
/// See docs/ARCHITECTURE.md "Cluster & placement" and "Fault tolerance".

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/serving.hpp"
#include "device/device.hpp"
#include "sim/des.hpp"

namespace omniboost::core {

/// One board of the fleet: a display name plus its device model
/// (heterogeneous specs typically come from device::profile files or
/// make_heterogeneous_fleet()).
struct BoardSpec {
  std::string name;
  device::DeviceSpec device;
};

/// Read-only snapshot of one board's live state, handed to placement
/// policies for every routing decision.
struct BoardView {
  std::size_t index = 0;               ///< board index in the fleet
  const device::DeviceSpec* device = nullptr;
  std::size_t streams = 0;             ///< streams currently serving
  double load_flops = 0.0;             ///< summed total_flops of those streams
  double peak_gflops = 0.0;            ///< summed component peaks (capacity)
  double memory_headroom_bytes = 0.0;  ///< budget minus the residency bound
  /// DES throughput the board's most recent epoch measured (0 when idle).
  double last_measured_throughput = 0.0;
};

/// Routing strategy contract: given the arrival, its network, every board's
/// view, and the (non-empty) set of admitting board indices, return one of
/// the admissible indices. Must be deterministic — the cluster pins
/// byte-identical reports across repeated runs for every policy.
class IPlacementPolicy {
 public:
  virtual ~IPlacementPolicy() = default;
  virtual std::string name() const = 0;
  virtual std::size_t place(const workload::ScenarioEvent& arrival,
                            const models::NetworkDesc& net,
                            const std::vector<BoardView>& boards,
                            const std::vector<std::size_t>& admissible) = 0;
};

/// Built-in policies: "least-loaded" (fewest streams), "best-t" (lowest
/// estimated utilization (load + arrival) / capacity), "memory-headroom"
/// (largest residency headroom). Ties break to the lowest board index.
/// Throws std::invalid_argument on an unknown kind.
std::unique_ptr<IPlacementPolicy> make_placement_policy(
    const std::string& kind);
/// The registered policy kinds, in presentation order.
const std::vector<std::string>& placement_policy_kinds();

/// Fleet-level controls.
struct ClusterConfig {
  /// Per-board serving controls (warm start, intra-board churn-cost model);
  /// every board shares one config.
  ServingConfig serving;
  /// DES controls for every board's simulator.
  sim::DesConfig des;
  /// Master switch for rescue migration off an infeasible board.
  bool migrate = true;
  /// Effective cross-board weight-transfer bandwidth (GB/s) — fleets move
  /// weights over a network, not the on-chip link, so this is priced on top
  /// of the per-segment overhead of ServingConfig::migration (which applies
  /// its default even when the intra-board model is disabled).
  double cross_board_gbps = 1.0;
  /// Rescue migrations whose priced stall exceeds this are skipped
  /// (0 = no cap).
  double max_migration_stall_s = 0.0;
  /// Bypasses admission entirely (every arrival routes; nothing is
  /// rejected). The single-board equivalence pin uses this to guarantee the
  /// cluster replays exactly what ServingRuntime would. Failed boards never
  /// admit, admit_all or not.
  bool admit_all = false;
  /// After a `recover` event, greedily pull streams back onto the recovered
  /// board from the fleet's most-loaded boards (lightest working set first,
  /// priced as cross-board transfers, elective — the stall cap applies).
  /// Off by default: recovery then only restores the board for future
  /// arrivals.
  bool rebalance_on_recovery = false;
};

/// Per-board reports plus the fleet-level aggregates the benches compare.
struct ClusterReport {
  std::vector<std::string> board_names;
  std::vector<ServingReport> boards;  ///< index-aligned with board_names

  /// Offered-vs-served load: every scenario arrival is offered; it is
  /// either admitted to exactly one board or rejected (conservation is
  /// pinned by tests/cluster_test.cpp).
  std::size_t offered_streams = 0;
  std::size_t admitted_streams = 0;
  std::size_t rejected_streams = 0;
  double rejection_rate = 0.0;  ///< rejected / offered (0 when none offered)
  std::size_t departures = 0;   ///< departures applied to a board
  std::size_t rejected_departures = 0;  ///< departures of rejected streams

  /// Rescue-migration accounting (fleet-level; see file header).
  std::size_t migrations = 0;
  double cross_board_stall_s = 0.0;
  double cross_board_weight_bytes = 0.0;

  /// Fault-tolerance accounting (all zero for fault-free scenarios).
  std::size_t board_failures = 0;    ///< `fail` events applied
  std::size_t board_throttles = 0;   ///< `throttle` events applied
  std::size_t board_recoveries = 0;  ///< `recover` events applied
  /// Streams moved off a failed board onto a survivor, and the cross-board
  /// transfer cost charged for those moves.
  std::size_t failovers = 0;
  double failover_stall_s = 0.0;
  double failover_weight_bytes = 0.0;
  /// Streams dropped during a failover because no surviving board admitted
  /// them (graceful degradation — distinct from rejected_streams, which
  /// never got on a board at all). Their later departures are swallowed
  /// into shed_departures.
  std::size_t shed_streams = 0;
  std::size_t shed_departures = 0;
  /// Streams pulled back onto a recovered board (rebalance_on_recovery).
  std::size_t rebalances = 0;
  double rebalance_stall_s = 0.0;
  /// Summed per-board out-of-service time: every `fail`..`recover` interval,
  /// plus, for boards still down when the scenario ends, the tail up to the
  /// last event's timestamp.
  double downtime_board_s = 0.0;
  /// Non-idle epochs served by a throttled board (graceful-degradation
  /// exposure: how much serving ran at reduced speed).
  std::size_t degraded_epochs = 0;
  /// Streams still resident on boards when the scenario ends. Conservation
  /// (pinned): admitted = departures + shed_streams + resident_streams.
  std::size_t resident_streams = 0;

  /// Idle-time background re-search accounting (the serving daemon's
  /// between-events refinement; see ClusterSession::note_background_search).
  /// Always zero for batch Cluster::run replays — the batch loop never
  /// idles, so trace replay parity is unaffected by installs.
  std::size_t background_searches = 0;
  std::size_t background_improvements = 0;

  /// Sums over the per-board reports (equality with the sum is pinned).
  std::size_t decisions = 0;
  double total_decision_seconds = 0.0;
  /// Served capacity proxy: sum of per-board mean DES throughput.
  double fleet_throughput = 0.0;
  std::size_t total_slo_streams = 0;
  std::size_t total_slo_violations = 0;
  std::size_t total_evaluations = 0;
  std::size_t total_cache_hits = 0;
  std::size_t total_des_replays = 0;
  std::size_t total_replay_hits = 0;
  std::size_t total_migrated_segments = 0;
  double total_migration_stall_s = 0.0;
};

/// Builds one scheduler per board at the start of a run (boards keep
/// independent warm state, so they cannot share one instance).
using SchedulerFactory =
    std::function<std::unique_ptr<IScheduler>(std::size_t board_index)>;

/// Residency lower bound for a set of streams on a board: per-stream
/// framework overhead plus each network's single-segment working set
/// (weights + largest activation). No mapping can use less, so
/// "bound > memory_budget_bytes" soundly rejects. Mirrors
/// sim::build_scene's accounting; exposed for tests and policies.
double board_memory_lower_bound_bytes(const device::CostModel& cost,
                                      const sim::NetworkList& nets);

/// Admissible solo-latency floor of one network on one board: the
/// per-inference overhead plus the sum over layers of the best-component
/// uncontended time. A stream whose SLO is below this floor cannot meet it
/// on that board under ANY mapping or load. Exposed for tests.
double solo_latency_floor_s(const device::CostModel& cost,
                            const models::NetworkDesc& net);

/// N boards behind one admission/placement layer.
class Cluster {
 public:
  /// \param zoo     dataset networks backing every board's mixes
  /// \param boards  fleet specs (non-empty; names should be unique)
  Cluster(const models::ModelZoo& zoo, std::vector<BoardSpec> boards,
          ClusterConfig config = {});

  /// Replays \p scenario across the fleet: arrivals are admitted, routed by
  /// \p policy, and served through each board's own ServingSession;
  /// departures resolve to whichever board holds the stream. Deterministic:
  /// the same (fleet, config, scheduler factory, scenario, policy) always
  /// produces the byte-identical report.
  ClusterReport run(const SchedulerFactory& make_scheduler,
                    const workload::Scenario& scenario,
                    IPlacementPolicy& policy) const;

  std::size_t size() const { return boards_.size(); }
  const std::vector<BoardSpec>& boards() const { return boards_; }
  const ClusterConfig& config() const { return config_; }
  /// The board simulators (index-aligned with boards(); exposed so drivers
  /// can reuse them for per-board embeddings/estimators).
  const sim::DesSimulator& board_sim(std::size_t index) const {
    return *sims_[index];
  }

 private:
  friend class ClusterSession;

  const models::ModelZoo* zoo_;
  std::vector<BoardSpec> boards_;
  ClusterConfig config_;
  std::vector<std::unique_ptr<sim::DesSimulator>> sims_;
};

/// Cluster::run opened up event-by-event — the same extraction
/// ServingSession is of ServingRuntime, one level up. Holds exactly the
/// loop state the batch replay keeps between events (per-board schedulers
/// and sessions, board health, stream locations, the accumulating fleet
/// report), so `construct; apply() every event; finish()` IS Cluster::run,
/// bit-identical by construction.
///
/// The extra surface beyond the batch loop exists for the live serving
/// daemon (tools/daemon.cpp):
///  - apply() returns an ApplyOutcome describing what the event did (the
///    daemon's wire replies);
///  - version() counts applied events, so a background search started
///    before an event raced in can detect staleness and discard itself;
///  - install_mapping() re-decides one board's resident mix onto a given
///    mapping (a refresh epoch through the normal epoch engine — already-
///    served epochs are never touched);
///  - note_background_search() surfaces the searches/installs counters in
///    every report.
///
/// Events must satisfy the Scenario invariants for the fleet (non-
/// decreasing times, arrive-while-absent, depart-while-present, per-board
/// fault legality); a Scenario guarantees this for batch replays, and the
/// daemon validates each live command by re-validating its recorded trace
/// plus the candidate before applying. The session holds references into
/// the Cluster — it must not outlive it, and at most one session per
/// Cluster may be live at a time (sessions share the cluster's board
/// simulators). Destruction resets every board simulator to full speed, so
/// a later run/session starts from health.
class ClusterSession {
 public:
  static constexpr std::size_t kNoBoard = static_cast<std::size_t>(-1);

  /// What one applied event did, for the daemon's wire replies.
  enum class ApplyKind {
    kAdmitted,             ///< arrival admitted (and possibly rescued)
    kRejected,             ///< arrival rejected by admission
    kDeparted,             ///< departure applied to its board
    kSwallowedDeparture,   ///< departure of a rejected/shed stream
    kFault,                ///< fail/throttle/recover applied
  };
  struct ApplyOutcome {
    ApplyKind kind = ApplyKind::kFault;
    /// Board the event landed on (final board for rescued arrivals;
    /// kNoBoard for rejections/swallowed departures).
    std::size_t board = kNoBoard;
    bool migrated = false;  ///< the arrival was rescue-migrated
    /// DES throughput of the epoch the event triggered (0 when none was
    /// served: rejections, swallowed departures, fail/recover without a
    /// refresh).
    double measured_throughput = 0.0;
  };

  ClusterSession(const Cluster& cluster, const SchedulerFactory& make_scheduler,
                 IPlacementPolicy& policy);
  ~ClusterSession();
  ClusterSession(const ClusterSession&) = delete;
  ClusterSession& operator=(const ClusterSession&) = delete;

  /// Applies one scenario event: the body of Cluster::run's event loop.
  ApplyOutcome apply(const workload::ScenarioEvent& e);

  /// Snapshot of everything applied so far — the batch report, including
  /// the end-of-scenario tail accounting (downtime up to the last event's
  /// timestamp, resident streams, per-board aggregation). The session stays
  /// usable; the daemon's `status`/`report` commands call this repeatedly.
  ClusterReport finish() const;

  /// Monotonic count of applied events. A background search snapshots this
  /// before launching and installs only if it is unchanged — any event
  /// racing in invalidates the refinement's input mix.
  std::uint64_t version() const { return version_; }

  std::size_t size() const { return sessions_.size(); }
  const ServingSession& session(std::size_t board) const;
  bool board_up(std::size_t board) const;
  /// The board's CURRENT device spec, throttle included — what a background
  /// refinement must optimize against.
  const device::DeviceSpec& board_device(std::size_t board) const;

  /// Re-decides \p board's resident mix onto \p mapping via a refresh epoch
  /// (counted like any decision; label becomes the epoch's event string).
  /// Returns false without serving anything when the board is down or idle,
  /// or the mapping's shape no longer matches the resident mix — the
  /// install-only-if-nothing-raced rule's last line of defense. Never
  /// touches already-served epochs.
  bool install_mapping(std::size_t board, const sim::Mapping& mapping,
                       double time_s, const std::string& label);

  /// Counts one finished background search (and whether it installed) into
  /// every subsequent report.
  void note_background_search(bool installed);

 private:
  std::vector<BoardView> make_views() const;
  bool admits(std::size_t board, const models::NetworkDesc& net,
              double slo_s) const;
  double cross_board_stall(const models::NetworkDesc& net) const;
  const EpochReport& serve(std::size_t board,
                           const workload::ScenarioEvent& ev,
                           double stall_s = 0.0);
  double working_set(const models::NetworkDesc& net) const;
  void arrive_at(std::size_t target, models::ModelId m, double slo_s,
                 double time_s, double stall_s);

  const Cluster* cluster_;
  IPlacementPolicy* policy_;
  std::vector<std::unique_ptr<IScheduler>> schedulers_;
  std::vector<ServingSession> sessions_;

  // Board health: up_[i] false while board i is failed, throttle_[i] < 1
  // while it serves degraded. Fault-free event streams never change either.
  std::vector<bool> up_;
  std::vector<double> throttle_;
  std::vector<double> down_since_;

  // Stream location: which board holds each model's stream (mixes are
  // globally duplicate-free, so ModelId keys the stream), kNoBoard = absent.
  std::vector<std::size_t> location_;
  std::vector<bool> rejected_;
  std::vector<bool> shed_;

  ClusterReport report_;  ///< fleet-level accumulators; finish() finalizes
  double last_time_s_ = 0.0;
  std::uint64_t version_ = 0;
};

/// Renders the fleet text report the CLI's fleet mode prints and the
/// daemon's `status`/`report` commands return: the per-board table, the
/// fleet/throughput/migration/fault/SLO summary lines, and one
/// machine-parseable line per report —
///   `conservation: offered=.. admitted=.. rejected=.. departures=..
///    shed=.. resident=..`
/// — which the daemon smoke lane greps to compare live accounting against
/// an offline trace replay. A `background: searches=.. improvements=..`
/// line appears when either counter is nonzero.
std::string format_cluster_report(const ClusterReport& report);

/// A stock heterogeneous fleet for benches and quickstarts: cycles
/// hikey970 (stock) / -pro (1.5x compute, 1.5x memory) / -lite (0.6x
/// compute, 0.75x memory) variants, names suffixed with the board index.
std::vector<BoardSpec> make_heterogeneous_fleet(std::size_t n);

}  // namespace omniboost::core
