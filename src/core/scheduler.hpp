#pragma once
/// \file scheduler.hpp
/// The common interface every multi-DNN scheduler implements: OmniBoost,
/// the GPU-only baseline, MOSAIC and the GA. Benches compare them through
/// this interface and time their decisions.
///
/// Two entry points: schedule() is the paper's one-shot decision for a fixed
/// mix, and reschedule() is the dynamic-scenario form — the serving runtime
/// calls it whenever the mix changes mid-flight, handing the scheduler the
/// previous mapping plus a ScheduleContext describing which streams
/// survived. The default reschedule() falls back to schedule(), so every
/// scheduler is serving-capable; warm-started schedulers (OmniBoost)
/// override it to make incremental decisions cheaper.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sim/mapping.hpp"
#include "workload/workload.hpp"

namespace omniboost::sim {
class DesSimulator;
class MigrationCostModel;
}  // namespace omniboost::sim

namespace omniboost::core {

/// Outcome of one scheduling decision.
struct ScheduleResult {
  sim::Mapping mapping;
  double expected_reward = 0.0;   ///< scheduler-internal score (0 if none)
  double decision_seconds = 0.0;  ///< wall-clock decision latency
  /// Performance-model / simulator queries actually executed. For
  /// memoizing searchers (OmniBoost's MCTS) repeated visits to an
  /// already-scored mapping are counted in cache_hits instead, so
  /// evaluations + cache_hits is the rollout budget spent.
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;     ///< queries answered from an evaluation memo
  /// DES candidate replays of an SLO-aware warm decision (OmniBoost's
  /// reschedule with slo_s + board in the context): des_replays counts
  /// simulate_traced calls actually executed, replay_hits counts candidates
  /// answered from the replay memo instead — analogous to the
  /// evaluations/cache_hits split, so des_replays + replay_hits is the
  /// number of distinct candidates the SLO shaping scored. Both stay zero
  /// for SLO-free decisions and for schedulers without SLO shaping.
  std::size_t des_replays = 0;
  std::size_t replay_hits = 0;
  /// Board time a measurement-driven scheduler would burn on the device for
  /// this decision (GA fitness runs). Zero for model-driven schedulers.
  double board_seconds = 0.0;

  /// Optimality-certificate fields, filled only by bounding searches
  /// (sched::BranchAndBoundScheduler). lower_bound is the objective of the
  /// returned incumbent (achieved, hence a certified lower bound on the
  /// optimum); upper_bound is an admissible bound no optimal mapping can
  /// exceed. proved_optimal means the search closed the gap before its
  /// budget ran out — then lower_bound == upper_bound == expected_reward.
  std::optional<double> lower_bound;
  std::optional<double> upper_bound;
  std::optional<bool> proved_optimal;
  /// Search-tree nodes expanded before returning (anytime-budget telemetry).
  std::optional<std::size_t> nodes_expanded;
};

/// Context of an incremental decision in a dynamic scenario
/// (core::ServingRuntime): how the new workload relates to the one the
/// previous mapping was produced for.
struct ScheduleContext {
  /// The workload the previous mapping scheduled. Not read by the built-in
  /// schedulers (carried_from already encodes the old->new stream
  /// relationship), but provided so overrides can interpret carried_from
  /// indices without re-deriving the previous mix — e.g. a warm GA keying
  /// saved populations by mix, or SLO-aware policies comparing mixes.
  workload::Workload previous_workload;
  /// For each stream of the NEW workload: the index of the same model in
  /// previous_workload, or -1 for a stream that just arrived. Mixes are
  /// duplicate-free, so the match is unambiguous.
  std::vector<std::ptrdiff_t> carried_from;
  /// False asks for a cold full-budget decision: warm-started schedulers
  /// must behave exactly like schedule(). The serving runtime sets this
  /// from ServingConfig::warm_start so cold/warm comparisons share one path.
  bool warm_start = true;
  /// Per-stream latency SLOs (seconds), aligned with the NEW workload; 0 =
  /// no SLO for that stream, and an empty vector = no stream has one. SLO-
  /// aware schedulers (OmniBoost's warm search) shape down or hard-prune
  /// candidate mappings whose DES replay breaks any of these.
  std::vector<double> slo_s;
  /// Board model for SLO replays. Null = SLO shaping unavailable: schedulers
  /// MUST then ignore slo_s rather than guess latencies. The serving runtime
  /// always passes its simulator; hand-built contexts may leave it null to
  /// keep the decision bit-identical to the SLO-free path.
  const sim::DesSimulator* board = nullptr;
  /// Churn-cost model the serving runtime measures epochs with (null or
  /// disabled = migrations are free). SLO-aware schedulers fold the same
  /// per-candidate migration stalls into their replays; a one-off stall
  /// cannot change per-frame latency, so it affects the SLO check only
  /// through starvation (a candidate whose own churn would leave an SLO
  /// stream serving zero frames in the window counts as violating) — the
  /// sub-starvation price of churn lands in the runtime's measured T.
  const sim::MigrationCostModel* migration = nullptr;
};

/// A run-time multi-DNN workload manager.
class IScheduler {
 public:
  virtual ~IScheduler() = default;

  /// Display name used in bench tables.
  virtual std::string name() const = 0;

  /// Produces a layer-to-component mapping for the workload.
  virtual ScheduleResult schedule(const workload::Workload& w) = 0;

  /// Contextual rescheduling after a mix change. The base implementation is
  /// the adapter that keeps every one-shot scheduler serving-capable: it
  /// ignores the context and recomputes from scratch via schedule().
  /// Overrides may reuse \p previous (e.g. OmniBoost seeds its search with
  /// the surviving streams' assignments and shrinks the budget), but must
  /// fall back to plain schedule() when ctx.warm_start is false.
  virtual ScheduleResult reschedule(const workload::Workload& w,
                                    const sim::Mapping& previous,
                                    const ScheduleContext& ctx) {
    (void)previous;
    (void)ctx;
    return schedule(w);
  }
};

}  // namespace omniboost::core
