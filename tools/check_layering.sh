#!/usr/bin/env sh
# Layering lint: greps every `#include "layer/…"` edge inside src/ and fails
# on any edge not in the architecture DAG (docs/ARCHITECTURE.md). Run by
# tools/run_tier1.sh so layering rot fails tier-1 instead of accreting.
#
# The allowed edge list below IS the architecture: to add an edge, change
# docs/ARCHITECTURE.md first, then mirror it here. Notes:
#  * every layer may include itself and util (the leaf);
#  * sched -> core covers the IScheduler/evaluator interfaces
#    (core/scheduler.hpp etc.) that all comparison schedulers implement —
#    core's own sources must NOT include sched, keeping the pair acyclic.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
src="$root/src"

allowed_for() {
  case "$1" in
    util)     echo "util" ;;
    tensor)   echo "tensor util" ;;
    nn)       echo "nn tensor util" ;;
    models)   echo "models util" ;;
    device)   echo "device models util" ;;
    workload) echo "workload models sim util" ;;
    sim)      echo "sim device models util" ;;
    sched)    echo "sched core device models sim util workload" ;;
    core)     echo "core device models nn sim tensor util workload" ;;
    *)        echo "" ;;
  esac
}

status=0
for dir in "$src"/*/; do
  layer=$(basename "$dir")
  allowed=$(allowed_for "$layer")
  if [ -z "$allowed" ]; then
    echo "check_layering: unknown layer 'src/$layer' — add it to the DAG in" \
         "tools/check_layering.sh and docs/ARCHITECTURE.md" >&2
    status=1
    continue
  fi
  # Observed include targets: `#include "<target>/..."`.
  targets=$(grep -rhoE '#include "[a-z_]+/' "$dir" 2>/dev/null \
            | sed 's/#include "//; s|/$||' | sort -u)
  for target in $targets; do
    ok=0
    for a in $allowed; do
      [ "$target" = "$a" ] && ok=1 && break
    done
    if [ "$ok" -eq 0 ]; then
      echo "check_layering: forbidden edge $layer -> $target" >&2
      grep -rlE "#include \"$target/" "$dir" | sed 's/^/  /' >&2
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_layering: OK (all #include edges respect the DAG)"
fi
exit "$status"
