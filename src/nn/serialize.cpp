#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace omniboost::nn {

namespace {

constexpr char kMagic[4] = {'O', 'B', 'N', 'N'};

void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(b), 4);
}

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(b), 8);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw std::runtime_error("nn::load_params: truncated stream");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  if (!is) throw std::runtime_error("nn::load_params: truncated stream");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

}  // namespace

namespace {

void write_tensor(std::ostream& os, const tensor::Tensor& t) {
  write_u64(os, t.rank());
  for (std::size_t d = 0; d < t.rank(); ++d) write_u64(os, t.extent(d));
  // float32 little-endian payload; portable across the platforms this
  // library targets (IEEE-754 assumed, checked at load).
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

void read_tensor_into(std::istream& is, tensor::Tensor& t) {
  const std::uint64_t rank = read_u64(is);
  if (rank != t.rank()) {
    throw std::runtime_error("nn::load_params: tensor rank mismatch");
  }
  for (std::size_t d = 0; d < t.rank(); ++d) {
    const std::uint64_t extent = read_u64(is);
    if (extent != t.extent(d)) {
      throw std::runtime_error("nn::load_params: tensor shape mismatch");
    }
  }
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is) throw std::runtime_error("nn::load_params: truncated payload");
}

}  // namespace

void save_params(Module& module, std::ostream& os) {
  const std::vector<Param*> params = module.params();
  const std::vector<tensor::Tensor*> buffers = module.buffers();
  os.write(kMagic, 4);
  write_u32(os, kSerializeVersion);
  write_u64(os, params.size());
  for (const Param* p : params) write_tensor(os, p->value);
  // Non-trainable state (BatchNorm running stats) travels with the weights:
  // without it a restored network normalizes with fresh statistics and its
  // inference outputs differ.
  write_u64(os, buffers.size());
  for (const tensor::Tensor* b : buffers) write_tensor(os, *b);
  if (!os) throw std::runtime_error("nn::save_params: stream write failed");
}

void load_params(Module& module, std::istream& is) {
  static_assert(sizeof(float) == 4, "float32 storage assumed");
  char magic[4];
  is.read(magic, 4);
  if (!is || magic[0] != kMagic[0] || magic[1] != kMagic[1] ||
      magic[2] != kMagic[2] || magic[3] != kMagic[3]) {
    throw std::runtime_error("nn::load_params: bad magic (not an OBNN file)");
  }
  const std::uint32_t version = read_u32(is);
  if (version != kSerializeVersion) {
    throw std::runtime_error("nn::load_params: unsupported version " +
                             std::to_string(version));
  }
  const std::vector<Param*> params = module.params();
  const std::uint64_t count = read_u64(is);
  if (count != params.size()) {
    throw std::runtime_error(
        "nn::load_params: parameter count mismatch (stream " +
        std::to_string(count) + ", module " + std::to_string(params.size()) +
        ")");
  }
  for (Param* p : params) read_tensor_into(is, p->value);

  const std::vector<tensor::Tensor*> buffers = module.buffers();
  const std::uint64_t buffer_count = read_u64(is);
  if (buffer_count != buffers.size()) {
    throw std::runtime_error("nn::load_params: buffer count mismatch (stream " +
                             std::to_string(buffer_count) + ", module " +
                             std::to_string(buffers.size()) + ")");
  }
  for (tensor::Tensor* b : buffers) read_tensor_into(is, *b);
}

void save_params_file(Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("nn::save_params_file: cannot open " + path);
  }
  save_params(module, os);
}

void load_params_file(Module& module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("nn::load_params_file: cannot open " + path);
  }
  load_params(module, is);
}

}  // namespace omniboost::nn
